// Package bufown implements the snaplint analyzer that enforces the
// buffer-ownership contracts of DESIGN.md §10. Three annotations, all
// propagated across packages as Facts:
//
//	//snap:returns-borrowed    the result aliases callee-owned scratch,
//	                           valid only until the next call
//	//snap:consumes <param>    the argument is handed off (recycled);
//	                           the caller must not touch it afterward
//	//snap:borrows <param>     the callee may read the param during the
//	                           call but must not retain or return it
//
// Caller-side rules. The result of a //snap:returns-borrowed call may
// be used transiently — read, passed on, copied from — but may not be
// stored into a struct field or global, and may not be returned unless
// the caller is itself annotated //snap:returns-borrowed (ownership
// does not launder through a wrapper). The same applies to any local
// variable the result was assigned to. An argument passed for a
// //snap:consumes parameter must not be used after the call returns
// (until reassigned): this is the RecycleFrame rule — a recycled frame
// belongs to the pool.
//
// Definition-side rules. Inside a function declaring //snap:borrows,
// the borrowed parameter (and any alias sliced from it) must not be
// stored into fields or globals, or escape via return — a decoded
// update must never alias the transport frame it was parsed from. And
// an exported pointer-receiver method that returns one of the
// receiver's numeric-slice fields without declaring
// //snap:returns-borrowed is flagged: that is exactly the shape of the
// historical Params() bug, where live engine state escaped unlabeled.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/snapml/snap/internal/analysis/directive"
	"github.com/snapml/snap/internal/analysis/lint"
)

// Fact records a function's buffer-ownership contract.
type Fact struct {
	ReturnsBorrowed bool     `json:"returnsBorrowed,omitempty"`
	Consumes        []string `json:"consumes,omitempty"`
	Borrows         []string `json:"borrows,omitempty"`
}

func (*Fact) AFact() {}

var Analyzer = &lint.Analyzer{
	Name:      "bufown",
	Doc:       "borrowed results are not retained, consumed buffers are not reused, borrowed params do not escape",
	Run:       run,
	FactTypes: []lint.Fact{new(Fact)},
}

func run(pass *lint.Pass) (any, error) {
	annotated := make(map[types.Object]*Fact)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fact := factFor(d.Doc)
				if fact == nil {
					continue
				}
				if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
					annotated[obj] = fact
					if pass.ExportObjectFact != nil {
						pass.ExportObjectFact(obj, fact)
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						fact := factFor(m.Doc)
						if fact == nil || len(m.Names) == 0 {
							continue
						}
						if obj := pass.TypesInfo.Defs[m.Names[0]]; obj != nil {
							annotated[obj] = fact
							if pass.ExportObjectFact != nil {
								pass.ExportObjectFact(obj, fact)
							}
						}
					}
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			self := annotated[pass.TypesInfo.Defs[fn.Name]]
			checkBorrowsParams(pass, fn, self)
			checkUnlabeledBorrowedReturn(pass, fn, self)
			checkCallers(pass, fn, self, annotated)
		}
	}
	return nil, nil
}

func factFor(doc *ast.CommentGroup) *Fact {
	var f Fact
	for _, d := range directive.ForDoc(doc) {
		switch d.Name {
		case "returns-borrowed":
			f.ReturnsBorrowed = true
		case "consumes":
			f.Consumes = append(f.Consumes, d.Args...)
		case "borrows":
			f.Borrows = append(f.Borrows, d.Args...)
		}
	}
	if !f.ReturnsBorrowed && len(f.Consumes) == 0 && len(f.Borrows) == 0 {
		return nil
	}
	return &f
}

// checkBorrowsParams verifies the definition side of //snap:borrows:
// the named parameters and their slice aliases stay within the call.
func checkBorrowsParams(pass *lint.Pass, fn *ast.FuncDecl, self *Fact) {
	if self == nil || len(self.Borrows) == 0 {
		return
	}
	tainted := make(map[types.Object]string) // alias object → borrowed param name
	for _, field := range fn.Type.Params.List {
		for _, id := range field.Names {
			for _, want := range self.Borrows {
				if id.Name == want {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						tainted[obj] = want
					}
				}
			}
		}
	}
	if len(tainted) == 0 {
		return
	}
	name := funcDisplayName(fn)
	walkSkippingFuncLits(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				src, srcOK := aliasRoot(pass.TypesInfo, rhs, tainted)
				if !srcOK {
					continue
				}
				if i >= len(n.Lhs) {
					break
				}
				lhs := n.Lhs[i]
				if dest := retainedDest(pass.TypesInfo, lhs); dest != "" {
					pass.Reportf(n.Pos(), "borrowed parameter %s retained in %s by %s", src, dest, name)
				} else if obj := localObj(pass.TypesInfo, lhs); obj != nil {
					tainted[obj] = src // alias spreads through locals
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if src, ok := aliasRoot(pass.TypesInfo, r, tainted); ok {
					pass.Reportf(r.Pos(), "borrowed parameter %s escapes via return from %s", src, name)
				}
			}
		}
	})
}

// checkUnlabeledBorrowedReturn flags the Params() bug shape: an
// exported pointer-receiver method returning one of the receiver's
// numeric-slice fields without //snap:returns-borrowed.
func checkUnlabeledBorrowedReturn(pass *lint.Pass, fn *ast.FuncDecl, self *Fact) {
	if self != nil && self.ReturnsBorrowed {
		return
	}
	if fn.Recv == nil || len(fn.Recv.List) != 1 || !ast.IsExported(fn.Name.Name) {
		return
	}
	var recvObj types.Object
	if names := fn.Recv.List[0].Names; len(names) == 1 {
		recvObj = pass.TypesInfo.Defs[names[0]]
	}
	if recvObj == nil {
		return
	}
	name := funcDisplayName(fn)
	walkSkippingFuncLits(fn.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, r := range ret.Results {
			e := unparen(r)
			for {
				se, ok := e.(*ast.SliceExpr)
				if !ok {
					break
				}
				e = unparen(se.X)
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := unparen(sel.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[base] != recvObj {
				continue
			}
			if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				continue
			}
			if !numericSlice(pass.TypesInfo.TypeOf(sel)) {
				continue
			}
			pass.Reportf(r.Pos(), "%s returns the receiver's %s buffer without //snap:returns-borrowed (copy it or annotate the contract)", name, sel.Sel.Name)
		}
	})
}

// checkCallers enforces the caller-side rules inside fn's body:
// borrowed results are not retained or re-returned, consumed arguments
// are not used after hand-off.
func checkCallers(pass *lint.Pass, fn *ast.FuncDecl, self *Fact, annotated map[types.Object]*Fact) {
	info := pass.TypesInfo
	name := funcDisplayName(fn)
	selfBorrowed := self != nil && self.ReturnsBorrowed

	factOf := func(call *ast.CallExpr) *Fact {
		callee := calleeFunc(info, call)
		if callee == nil {
			return nil
		}
		if f := annotated[callee]; f != nil {
			return f
		}
		var f Fact
		if pass.ImportObjectFact != nil && pass.ImportObjectFact(callee, &f) {
			return &f
		}
		return nil
	}

	borrowed := make(map[types.Object]bool) // locals holding borrowed results
	consumed := make(map[types.Object]token.Pos)
	var assigns []struct {
		obj types.Object
		pos token.Pos
	}

	// Pass A: find borrowed-call results and where they land, record
	// consume events and every reassignment.
	walkSkippingFuncLits(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				var lhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					lhs = n.Lhs[i]
				} else if len(n.Rhs) == 1 {
					lhs = n.Lhs[0] // tuple assign: taint the first var
				}
				if lhs == nil {
					continue
				}
				if obj := localObj(info, lhs); obj != nil {
					assigns = append(assigns, struct {
						obj types.Object
						pos token.Pos
					}{obj, n.Pos()})
				}
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				f := factOf(call)
				if f == nil || !f.ReturnsBorrowed {
					continue
				}
				if dest := retainedDest(info, lhs); dest != "" {
					pass.Reportf(n.Pos(), "borrowed result of %s stored in %s by %s", callName(call), dest, name)
				} else if obj := localObj(info, lhs); obj != nil {
					borrowed[obj] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if obj := localObj(info, e); obj != nil {
					assigns = append(assigns, struct {
						obj types.Object
						pos token.Pos
					}{obj, n.Pos()})
				}
			}
		case *ast.ReturnStmt:
			if selfBorrowed {
				return
			}
			for _, r := range n.Results {
				if call, ok := unparen(r).(*ast.CallExpr); ok {
					if f := factOf(call); f != nil && f.ReturnsBorrowed {
						pass.Reportf(r.Pos(), "%s returns the borrowed result of %s without declaring //snap:returns-borrowed", name, callName(call))
					}
				}
			}
		case *ast.CallExpr:
			f := factOf(n)
			if f == nil || len(f.Consumes) == 0 {
				return
			}
			callee := calleeFunc(info, n)
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				return
			}
			for _, pname := range f.Consumes {
				idx := paramIndex(sig, pname)
				if idx < 0 || idx >= len(n.Args) {
					continue
				}
				if obj := localObj(info, n.Args[idx]); obj != nil {
					if prev, ok := consumed[obj]; !ok || n.End() < prev {
						consumed[obj] = n.End()
					}
				}
			}
		}
	})

	// Pass B: flag retention of borrowed locals and use-after-consume.
	reportedConsume := make(map[types.Object]bool)
	walkSkippingFuncLits(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				obj := localObj(info, unparen(rhs))
				if obj == nil || !borrowed[obj] || i >= len(n.Lhs) {
					continue
				}
				if dest := retainedDest(info, n.Lhs[i]); dest != "" {
					pass.Reportf(n.Pos(), "borrowed buffer %s stored in %s by %s", obj.Name(), dest, name)
				}
			}
		case *ast.ReturnStmt:
			if selfBorrowed {
				return
			}
			for _, r := range n.Results {
				obj := localObj(info, unparen(r))
				if obj != nil && borrowed[obj] {
					pass.Reportf(r.Pos(), "%s returns borrowed buffer %s without declaring //snap:returns-borrowed", name, obj.Name())
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil || reportedConsume[obj] {
				return
			}
			cpos, ok := consumed[obj]
			if !ok || n.Pos() <= cpos {
				return
			}
			// A reassignment between the consume and this use gives the
			// variable a fresh buffer.
			for _, a := range assigns {
				if a.obj == obj && a.pos > cpos && a.pos <= n.Pos() {
					return
				}
			}
			reportedConsume[obj] = true
			pass.Reportf(n.Pos(), "use of %s after it was consumed (recycled buffers belong to the pool) in %s", obj.Name(), name)
		}
	})
}

// aliasRoot reports whether e aliases a tainted object — the object
// itself, a subslice of it, or the address of one of its elements —
// and returns the originating parameter name.
func aliasRoot(info *types.Info, e ast.Expr, tainted map[types.Object]string) (string, bool) {
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = unparen(x.X)
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = unparen(x.X)
				continue
			}
		case *ast.IndexExpr:
			// &frame[i] reached via the UnaryExpr case; a bare frame[i]
			// is a value copy, not an alias — except through a slice of
			// slices, which we treat conservatively as an alias.
			e = unparen(x.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil {
		return "", false
	}
	src, ok := tainted[obj]
	return src, ok
}

// retainedDest classifies an assignment destination that outlives the
// call frame: a struct field, a global, or an element of either.
// It returns "" for plain locals and blanks.
func retainedDest(info *types.Info, e ast.Expr) string {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return ""
		}
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "global " + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return "field " + x.Sel.Name
		}
		// pkg.Global
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "global " + v.Name()
		}
		return ""
	case *ast.IndexExpr:
		return retainedDest(info, x.X)
	case *ast.StarExpr:
		return retainedDest(info, x.X)
	}
	return ""
}

// localObj returns the *types.Var for a plain local-variable
// expression, or nil for anything else (fields, globals, complex
// expressions).
func localObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

func paramIndex(sig *types.Signature, name string) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func callName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if rn := receiverTypeName(fn.Recv.List[0].Type); rn != "" {
			return rn + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

func numericSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// walkSkippingFuncLits visits every node of body in source order but
// does not descend into function literals: their statements belong to
// a different frame with its own ownership story.
func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
