package bufown_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/bufown"
)

func TestBufOwn(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "a")
}

// TestCrossPackageFacts lists the dependency (d) before the dependent
// (e), so d's ownership contracts are visible as facts at e's call
// sites.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "d", "e")
}
