// Package load turns `go list` package patterns into typechecked
// compilation units for the snaplint analyzers, using only the standard
// library. It shells out to `go list -export -deps -json` for package
// metadata and compiler export data (the build cache), parses each
// target package's sources, and typechecks them with a gc-export-data
// importer — the same separate-compilation strategy go vet uses, minus
// the x/tools dependency this repo cannot vendor offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package mirrors the subset of `go list -json` output the driver
// needs. ImportPath doubles as the unit's unique ID: for test variants
// it carries the " [pkg.test]" suffix, and export data is keyed by it.
type Package struct {
	ImportPath string            `json:"ImportPath"`
	Dir        string            `json:"Dir"`
	GoFiles    []string          `json:"GoFiles"`
	CgoFiles   []string          `json:"CgoFiles"`
	Export     string            `json:"Export"`
	Imports    []string          `json:"Imports"`
	ImportMap  map[string]string `json:"ImportMap"`
	DepOnly    bool              `json:"DepOnly"`
	Standard   bool              `json:"Standard"`
	ForTest    string            `json:"ForTest"`
	Incomplete bool              `json:"Incomplete"`
	Error      *PackageError     `json:"Error"`
}

// PackageError is go list's per-package error report (-e mode).
type PackageError struct {
	Pos string `json:"Pos"`
	Err string `json:"Err"`
}

// A Unit is one parsed and typechecked package, ready for analysis.
type Unit struct {
	Meta  *Package
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// FactsOnly marks a unit analyzed solely so downstream packages see
	// its facts: a dependency pulled in by Config.Deps, or a plain
	// package whose diagnostics the test variant already covers. Drivers
	// must discard its diagnostics.
	FactsOnly bool
}

// Config controls a Load call.
type Config struct {
	Dir   string // working directory for `go list` ("" = process cwd)
	Tests bool   // include _test.go files by analyzing test variants
	// Deps also typechecks the non-stdlib dependencies of the matched
	// packages (Meta.DepOnly marks them), so analyzers can compute
	// cross-package facts even when the pattern names only the
	// dependents. Drivers run dep-only units facts-only, discarding
	// their diagnostics — vet's VetxOnly, in-process.
	Deps bool
}

// A Failure is one package that could not be analyzed — a go list
// error, a parse error, or a typecheck error. Failures are reported
// alongside the units that did load so one broken package does not
// silently hide findings (or the breakage itself) in the others.
type Failure struct {
	ImportPath string
	Err        string
}

func (f Failure) String() string { return f.ImportPath + ": " + f.Err }

// Load lists patterns, typechecks every non-dependency package, and
// returns the units in `go list` order — which, because of -deps, is
// dependency order: a unit's imports always precede it, so a driver
// running analyzers in slice order sees every dependency's facts
// before they are needed. When cfg.Tests is set, a package with
// in-package tests is analyzed once as its test variant ("pkg
// [pkg.test]", which compiles GoFiles+TestGoFiles together) instead of
// twice.
//
// Packages that fail to list, parse, or typecheck are returned as
// Failures next to the units that loaded; only infrastructure errors
// (go list itself failing) are returned as err.
func Load(cfg Config, patterns ...string) ([]*Unit, []Failure, error) {
	pkgs, err := goList(cfg, patterns)
	if err != nil {
		return nil, nil, err
	}

	// Index export data by resolved package path for the importer.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	// One shared gc importer: it caches by resolved path, so the
	// packages map is shared across all units (Load is sequential).
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var units []*Unit
	var failures []Failure
	for _, p := range pkgs {
		if p.Error != nil {
			// Check the error before classify: a pattern that matched
			// nothing lists as a package with no GoFiles, which
			// classify would skip — the failure must surface, not
			// vanish. Standard-library and not-requested dependency
			// errors stay silent; they are not ours to report.
			if !p.Standard && !strings.HasSuffix(p.ImportPath, ".test") && (cfg.Deps || !p.DepOnly) {
				failures = append(failures, Failure{p.ImportPath, p.Error.Err})
			}
			continue
		}
		mode := classify(p, cfg, pkgs)
		if mode == skipUnit {
			continue
		}
		if len(p.CgoFiles) > 0 {
			failures = append(failures, Failure{p.ImportPath, "cgo package: not analyzable without generated sources"})
			continue
		}
		u, err := check(fset, gc, p)
		if err != nil {
			failures = append(failures, Failure{p.ImportPath, err.Error()})
			continue
		}
		u.FactsOnly = mode == factsUnit
		units = append(units, u)
	}
	return units, failures, nil
}

type unitMode int

const (
	skipUnit  unitMode = iota // not analyzed at all
	fullUnit                  // diagnostics + facts
	factsUnit                 // facts only, diagnostics discarded
)

// classify decides how the driver treats p: a root match is analyzed
// fully; a module dependency (with cfg.Deps) facts-only. A plain root
// shadowed by its test variant is also analyzed facts-only — go list's
// dependency order guarantees the *plain* package precedes every
// dependent, while the test variant (which re-checks the same files
// plus _test.go, and is where the diagnostics come from) carries no
// such guarantee relative to other roots.
func classify(p *Package, cfg Config, all []*Package) unitMode {
	if p.Standard || len(p.GoFiles) == 0 {
		return skipUnit
	}
	if p.DepOnly {
		if cfg.Deps {
			return factsUnit
		}
		return skipUnit
	}
	if strings.HasSuffix(p.ImportPath, ".test") {
		return skipUnit // generated test main package
	}
	if !cfg.Tests {
		if p.ForTest == "" {
			return fullUnit
		}
		return skipUnit
	}
	if p.ForTest != "" {
		return fullUnit // "pkg [pkg.test]" or "pkg_test [pkg.test]"
	}
	// Plain package shadowed by a test variant: facts-only.
	for _, q := range all {
		if q.ForTest == p.ImportPath && !q.DepOnly {
			return factsUnit
		}
	}
	return fullUnit
}

func check(fset *token.FileSet, gc types.Importer, p *Package) (*Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = p.Dir + string(os.PathSeparator) + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if r, ok := p.ImportMap[importPath]; ok {
			path = r
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})

	var firstErr error
	tc := &types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Unit{Meta: p, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func goList(cfg Config, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Imports,ImportMap,DepOnly,Standard,ForTest,Incomplete,Error",
	}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for {
		p := new(Package)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
