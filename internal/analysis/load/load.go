// Package load turns `go list` package patterns into typechecked
// compilation units for the snaplint analyzers, using only the standard
// library. It shells out to `go list -export -deps -json` for package
// metadata and compiler export data (the build cache), parses each
// target package's sources, and typechecks them with a gc-export-data
// importer — the same separate-compilation strategy go vet uses, minus
// the x/tools dependency this repo cannot vendor offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package mirrors the subset of `go list -json` output the driver
// needs. ImportPath doubles as the unit's unique ID: for test variants
// it carries the " [pkg.test]" suffix, and export data is keyed by it.
type Package struct {
	ImportPath string            `json:"ImportPath"`
	Dir        string            `json:"Dir"`
	GoFiles    []string          `json:"GoFiles"`
	CgoFiles   []string          `json:"CgoFiles"`
	Export     string            `json:"Export"`
	Imports    []string          `json:"Imports"`
	ImportMap  map[string]string `json:"ImportMap"`
	DepOnly    bool              `json:"DepOnly"`
	Standard   bool              `json:"Standard"`
	ForTest    string            `json:"ForTest"`
	Incomplete bool              `json:"Incomplete"`
	Error      *PackageError     `json:"Error"`
}

// PackageError is go list's per-package error report (-e mode).
type PackageError struct {
	Pos string `json:"Pos"`
	Err string `json:"Err"`
}

// A Unit is one parsed and typechecked package, ready for analysis.
type Unit struct {
	Meta  *Package
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Config controls a Load call.
type Config struct {
	Dir   string // working directory for `go list` ("" = process cwd)
	Tests bool   // include _test.go files by analyzing test variants
}

// Load lists patterns, typechecks every non-dependency package, and
// returns the units in `go list` order. When cfg.Tests is set, a
// package with in-package tests is analyzed once as its test variant
// ("pkg [pkg.test]", which compiles GoFiles+TestGoFiles together)
// instead of twice.
func Load(cfg Config, patterns ...string) ([]*Unit, error) {
	pkgs, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}

	// Index export data by resolved package path for the importer.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	// One shared gc importer: it caches by resolved path, so the
	// packages map is shared across all units (Load is sequential).
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var units []*Unit
	for _, p := range pkgs {
		if !analyzable(p, cfg.Tests, pkgs) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			// cgo units need the generated sources; out of scope.
			continue
		}
		u, err := check(fset, gc, p)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// analyzable reports whether p is a root unit the driver should
// typecheck and analyze (rather than an import supplying export data).
func analyzable(p *Package, tests bool, all []*Package) bool {
	if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
		return false
	}
	if strings.HasSuffix(p.ImportPath, ".test") {
		return false // generated test main package
	}
	if !tests {
		return p.ForTest == ""
	}
	if p.ForTest != "" {
		return true // "pkg [pkg.test]" or "pkg_test [pkg.test]"
	}
	// Plain package: skip if a test variant shadows it.
	for _, q := range all {
		if q.ForTest == p.ImportPath && !q.DepOnly {
			return false
		}
	}
	return true
}

func check(fset *token.FileSet, gc types.Importer, p *Package) (*Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = p.Dir + string(os.PathSeparator) + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if r, ok := p.ImportMap[importPath]; ok {
			path = r
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})

	var firstErr error
	tc := &types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Unit{Meta: p, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func goList(cfg Config, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Imports,ImportMap,DepOnly,Standard,ForTest,Incomplete,Error",
	}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for {
		p := new(Package)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
