package lockguard_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "a")
}
