// Package lockguard checks the repo's lock-annotation discipline.
//
// A struct field whose comment says
//
//	// guarded by mu
//	// guarded by Coordinator.mu   (a mutex on another struct)
//
// may only be read or written while that mutex is held. The analyzer
// performs a conservative, instance-insensitive abstract interpretation
// of each function body: Lock/RLock on an annotated mutex field raises
// its held count, Unlock/RUnlock lowers it, branches are merged by
// intersection, and a guarded-field access with a zero count is
// reported. Three escape hatches keep the discipline usable:
//
//   - a function whose doc comment says "Caller holds x.mu" (any
//     receiver or parameter x) starts with that mutex held;
//   - values freshly constructed in the current function (composite
//     literal, new) are exempt until they escape — the constructor
//     pattern;
//   - deferred unlocks do not lower the count, since they run at
//     return.
//
// Independently, lockguard reports fields that mix sync/atomic access
// (&x.f passed to atomic.LoadInt64 etc.) with plain reads or writes:
// such fields have no consistent synchronization story at all.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

// Analyzer is the lockguard analysis.
var Analyzer = &lint.Analyzer{
	Name: "lockguard",
	Doc:  "check that fields annotated `// guarded by <mu>` are accessed under that mutex, and that no field mixes sync/atomic and plain access",
	Run:  run,
}

var (
	guardRe = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)(?:\.([A-Za-z_]\w*))?`)
	// \s+ between the words: doc comments wrap, so "Caller" and "holds"
	// can land on different lines of the same paragraph.
	holdsRe  = regexp.MustCompile(`(?i)caller\s+(?:must\s+)?holds?\s+([A-Za-z_]\w*)\.([A-Za-z_]\w*)`)
	lockOps  = map[string]int{"Lock": +1, "RLock": +1, "Unlock": -1, "RUnlock": -1}
	fatalish = map[string]bool{"Fatal": true, "Fatalf": true, "Exit": true, "Goexit": true, "Skip": true, "Skipf": true, "SkipNow": true, "FailNow": true}
)

func run(pass *lint.Pass) (any, error) {
	c := &checker{
		pass:    pass,
		guards:  make(map[*types.Var]*types.Var),
		mutexes: make(map[*types.Var]bool),
	}
	c.collectAnnotations()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	c.checkAtomicMixing()
	return nil, nil
}

type checker struct {
	pass    *lint.Pass
	guards  map[*types.Var]*types.Var // guarded field -> mutex field
	mutexes map[*types.Var]bool       // mutex fields named by annotations
}

// state maps each annotated mutex field to its abstract held count.
// It is instance-insensitive: holding any Peer's mu counts as holding
// Peer.mu.
type state map[*types.Var]int

func (s state) clone() state {
	t := make(state, len(s))
	for k, v := range s {
		t[k] = v
	}
	return t
}

// merge intersects two branch-exit states: a mutex is held after the
// join only if both paths held it.
func merge(a, b state) state {
	t := make(state)
	for k, v := range a {
		if w := b[k]; w < v {
			v = w
		}
		if v > 0 {
			t[k] = v
		}
	}
	return t
}

// --- annotation collection ---------------------------------------------

func (c *checker) collectAnnotations() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			c.collectStruct(st)
			return true
		})
	}
}

func (c *checker) collectStruct(st *ast.StructType) {
	for _, field := range st.Fields.List {
		m := guardAnnotation(field)
		if m == nil {
			continue
		}
		var guard *types.Var
		if m[2] != "" {
			guard = c.fieldOf(m[1], m[2]) // Type.mu
		} else {
			guard = c.siblingField(st, m[1]) // mu in the same struct
		}
		if guard == nil || !isMutex(guard.Type()) {
			for _, name := range field.Names {
				c.pass.Reportf(field.Pos(), "field %s: `guarded by` annotation does not name a sync.Mutex or sync.RWMutex field", name.Name)
			}
			continue
		}
		c.mutexes[guard] = true
		for _, name := range field.Names {
			if obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.guards[obj] = guard
			}
		}
	}
}

// guardAnnotation returns the regexp match of a field's `guarded by`
// comment (doc or trailing), or nil.
func guardAnnotation(field *ast.Field) []string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m
		}
	}
	return nil
}

// siblingField resolves a guard named like `mu` to the field object of
// the same struct.
func (c *checker) siblingField(st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// fieldOf resolves `Type.field` against the current package scope.
func (c *checker) fieldOf(typeName, fieldName string) *types.Var {
	obj := c.pass.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == fieldName {
			return f
		}
	}
	return nil
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// --- per-function flow analysis ----------------------------------------

type funcCtx struct {
	c     *checker
	fresh map[types.Object]bool // locals constructed in this function
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if len(c.guards) == 0 {
		return
	}
	fc := &funcCtx{c: c, fresh: make(map[types.Object]bool)}
	st := make(state)
	c.seedCallerHolds(fd, st)
	fc.stmt(fd.Body, st)
}

// seedCallerHolds honors "Caller holds x.mu" doc comments by marking
// the named mutex held on entry.
func (c *checker) seedCallerHolds(fd *ast.FuncDecl, st state) {
	if fd.Doc == nil {
		return
	}
	for _, m := range holdsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		recv, field := m[1], m[2]
		// Resolve recv among the receiver and parameters.
		var fields []*ast.Field
		if fd.Recv != nil {
			fields = append(fields, fd.Recv.List...)
		}
		if fd.Type.Params != nil {
			fields = append(fields, fd.Type.Params.List...)
		}
		for _, f := range fields {
			for _, id := range f.Names {
				if id.Name != recv {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					continue
				}
				if mu := fieldOfType(obj.Type(), field); mu != nil && c.mutexes[mu] {
					st[mu]++
				}
			}
		}
	}
}

func fieldOfType(t types.Type, name string) *types.Var {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// stmt interprets s under st, mutating st in place, and reports whether
// control can fall through to the next statement.
func (fc *funcCtx) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case nil:
		return true

	case *ast.BlockStmt:
		for _, sub := range s.List {
			if !fc.stmt(sub, st) {
				return false
			}
		}
		return true

	case *ast.ExprStmt:
		if mu, delta := fc.lockOp(s.X); mu != nil {
			fc.expr(exprReceiverBase(s.X), st)
			st[mu] += delta
			if st[mu] < 0 {
				st[mu] = 0
			}
			return true
		}
		fc.expr(s.X, st)
		return !isTerminalCall(s.X)

	case *ast.DeferStmt:
		// A deferred unlock runs at return; the mutex stays held for
		// the rest of the body. Deferred closures are analyzed under
		// the current state.
		if mu, _ := fc.lockOp(s.Call); mu != nil {
			return true
		}
		fc.expr(s.Call, st)
		return true

	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fc.expr(a, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A new goroutine holds nothing, whatever the spawner held.
			fc.stmt(lit.Body, make(state))
		} else {
			fc.expr(s.Call.Fun, st)
		}
		return true

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fc.expr(r, st)
		}
		fc.trackFresh(s)
		for _, l := range s.Lhs {
			fc.expr(l, st)
		}
		return true

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					fc.expr(v, st)
				}
				// `var x T` (zero value) or `x := T{...}` both yield
				// unescaped values: constructor exemption.
				if len(vs.Values) == 0 || allFreshValues(vs.Values) {
					for _, id := range vs.Names {
						if obj := fc.c.pass.TypesInfo.Defs[id]; obj != nil {
							fc.fresh[obj] = true
						}
					}
				}
			}
		}
		return true

	case *ast.IncDecStmt:
		fc.expr(s.X, st)
		return true

	case *ast.SendStmt:
		fc.expr(s.Chan, st)
		fc.expr(s.Value, st)
		return true

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fc.expr(e, st)
		}
		return false

	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; exclude
		// this path from merges (conservative).
		return false

	case *ast.IfStmt:
		fc.stmt(s.Init, st)
		fc.expr(s.Cond, st)
		thenSt := st.clone()
		thenFalls := fc.stmt(s.Body, thenSt)
		elseSt := st.clone()
		elseFalls := true
		if s.Else != nil {
			elseFalls = fc.stmt(s.Else, elseSt)
		}
		switch {
		case thenFalls && elseFalls:
			replace(st, merge(thenSt, elseSt))
		case thenFalls:
			replace(st, thenSt)
		case elseFalls:
			replace(st, elseSt)
		default:
			return false
		}
		return true

	case *ast.ForStmt:
		fc.stmt(s.Init, st)
		body := st.clone()
		fc.expr(s.Cond, body)
		fc.stmt(s.Body, body)
		fc.stmt(s.Post, body)
		// Loop bodies are assumed lock-balanced; the post-loop state is
		// the pre-loop state.
		return true

	case *ast.RangeStmt:
		fc.expr(s.X, st)
		body := st.clone()
		fc.stmt(s.Body, body)
		return true

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return fc.branches(s, st)

	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, st)

	case *ast.EmptyStmt:
		return true
	}
	return true
}

// branches interprets switch/type-switch/select: every clause starts
// from the pre-state; falling clauses are intersected. A switch without
// a default can skip every clause, so the pre-state joins the merge.
func (fc *funcCtx) branches(s ast.Stmt, st state) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		fc.stmt(s.Init, st)
		fc.expr(s.Tag, st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		fc.stmt(s.Init, st)
		fc.stmt(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var exits []state
	for _, cl := range body.List {
		clSt := st.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				fc.expr(e, clSt)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			fc.stmt(cl.Comm, clSt)
			stmts = cl.Body
		}
		falls := true
		for _, sub := range stmts {
			if !fc.stmt(sub, clSt) {
				falls = false
				break
			}
		}
		if falls {
			exits = append(exits, clSt)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); !isSelect && !hasDefault {
		// Possible that no case matched.
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return false
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = merge(out, e)
	}
	replace(st, out)
	return true
}

func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// expr walks an expression under st, checking guarded-field accesses.
func (fc *funcCtx) expr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run (or are registered) with the current locks;
			// goroutine launches are handled at the go statement.
			fc.stmt(n.Body, st.clone())
			return false
		case *ast.CallExpr:
			// Nested lock calls inside expressions (rare) still update
			// state for the remainder of the statement.
			if mu, delta := fc.lockOp(n); mu != nil {
				st[mu] += delta
				if st[mu] < 0 {
					st[mu] = 0
				}
				return false
			}
		case *ast.SelectorExpr:
			fc.checkAccess(n, st)
		}
		return true
	})
}

// checkAccess reports a guarded-field access while its mutex is not
// held.
func (fc *funcCtx) checkAccess(sel *ast.SelectorExpr, st state) {
	selInfo, ok := fc.c.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return
	}
	guard := fc.c.guards[field]
	if guard == nil {
		return
	}
	if st[guard] > 0 {
		return
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if obj := fc.c.pass.TypesInfo.Uses[base]; obj != nil && fc.fresh[obj] {
			return // freshly constructed, not yet shared
		}
	}
	fc.c.pass.Reportf(sel.Sel.Pos(), "access to %q (guarded by %q) without holding the mutex", field.Name(), guard.Name())
}

// lockOp recognizes x.<mu>.Lock / Unlock / RLock / RUnlock where <mu>
// is one of the annotated mutex fields, returning the mutex and the
// held-count delta.
func (fc *funcCtx) lockOp(e ast.Expr) (*types.Var, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	delta, ok := lockOps[sel.Sel.Name]
	if !ok {
		return nil, 0
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	selInfo, ok := fc.c.pass.TypesInfo.Selections[muSel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil, 0
	}
	mu, ok := selInfo.Obj().(*types.Var)
	if !ok || !fc.c.mutexes[mu] {
		return nil, 0
	}
	return mu, delta
}

// exprReceiverBase returns the expression under x.mu.Lock() that still
// needs walking (x itself), so guarded accesses in the receiver chain
// are not skipped.
func exprReceiverBase(e ast.Expr) ast.Expr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
		return muSel.X
	}
	return nil
}

// trackFresh records `v := T{...}`, `v := &T{...}`, `v := new(T)` so
// constructor bodies are exempt from guard checks on v.
func (fc *funcCtx) trackFresh(s *ast.AssignStmt) {
	if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if !isFreshValue(s.Rhs[i]) {
			continue
		}
		if obj := fc.c.pass.TypesInfo.Defs[id]; obj != nil {
			fc.fresh[obj] = true
		}
	}
}

func allFreshValues(values []ast.Expr) bool {
	for _, v := range values {
		if !isFreshValue(v) {
			return false
		}
	}
	return true
}

func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// (*testing.T).Fatal, log.Fatalf, runtime.Goexit, ...
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return fatalish[name] || strings.HasPrefix(name, "Fatal")
	}
	return false
}

// --- atomic/plain mixing ------------------------------------------------

// checkAtomicMixing flags fields that are sometimes accessed through
// sync/atomic (&x.f passed to an atomic function) and sometimes
// accessed plainly in the same package.
func (c *checker) checkAtomicMixing() {
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)

	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !c.isAtomicCall(call) {
				return true
			}
			for _, a := range call.Args {
				un, ok := a.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := c.fieldOfSelector(sel); field != nil {
					atomicFields[field] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field := c.fieldOfSelector(sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			c.pass.Reportf(sel.Sel.Pos(), "field %q mixes sync/atomic and plain access; use atomic operations consistently", field.Name())
			return true
		})
	}
}

func (c *checker) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

func (c *checker) fieldOfSelector(sel *ast.SelectorExpr) *types.Var {
	selInfo, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selInfo.Obj().(*types.Var)
	return v
}
