package lockguard

import (
	"strings"
	"testing"
)

// FuzzAnnotationRegexps pins the comment-scraping regexes against
// arbitrary doc text: they must never panic, and anything they extract
// must be a well-formed identifier pair — a mis-lex here would silently
// bind a guard annotation to the wrong field.
func FuzzAnnotationRegexps(f *testing.F) {
	seeds := []string{
		"guarded by mu",
		"guarded by s.mu",
		"x guarded by  mu trailing",
		"Caller holds s.mu.",
		"caller must hold c.mu",
		"Caller\nholds\ns.mu (doc comments wrap)",
		"guarded by 0bad",
		"caller holds .",
		strings.Repeat("guarded by mu ", 200),
		"guarded by \xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	ident := func(t *testing.T, s string) {
		if s == "" {
			return // optional capture groups may be empty
		}
		for i, r := range s {
			alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
			if !alpha && (i == 0 || r < '0' || r > '9') {
				t.Fatalf("captured %q is not an identifier", s)
			}
		}
	}
	f.Fuzz(func(t *testing.T, text string) {
		if m := guardRe.FindStringSubmatch(text); m != nil {
			if len(m) != 3 {
				t.Fatalf("guardRe produced %d groups, want 3", len(m))
			}
			if m[1] == "" {
				t.Fatal("guardRe matched without a mutex name")
			}
			ident(t, m[1])
			ident(t, m[2])
		}
		for _, m := range holdsRe.FindAllStringSubmatch(text, -1) {
			if len(m) != 3 {
				t.Fatalf("holdsRe produced %d groups, want 3", len(m))
			}
			if m[1] == "" || m[2] == "" {
				t.Fatalf("holdsRe matched with empty receiver/field: %q", m[0])
			}
			ident(t, m[1])
			ident(t, m[2])
		}
	})
}
