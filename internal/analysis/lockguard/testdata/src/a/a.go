// Package a exercises the lockguard analyzer: guarded-field access
// under sibling and cross-struct mutexes, flow-sensitive early-return
// and select patterns, constructor and caller-holds exemptions, and
// sync/atomic mixing.
package a

import (
	"sort"
	"sync"
	"sync/atomic"
)

type box struct {
	mu sync.Mutex
	n  int // guarded by mu

	free int // unguarded: never flagged
}

func lockedAccess(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func deferredUnlock(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func unlockedRead(b *box) int {
	return b.n // want `access to "n" \(guarded by "mu"\) without holding the mutex`
}

func unlockedWrite(b *box) {
	b.free = 1
	b.n = 2 // want `access to "n"`
}

func afterUnlock(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.n++ // want `access to "n"`
}

func earlyReturn(b *box, stop bool) {
	b.mu.Lock()
	if stop {
		b.mu.Unlock()
		return
	}
	b.n++ // lock still held on this path
	b.mu.Unlock()
}

func conditionalLock(b *box, lock bool) {
	if lock {
		b.mu.Lock()
	}
	b.n++ // want `access to "n"`
	if lock {
		b.mu.Unlock()
	}
}

// bump is a locked-section helper. Caller holds b.mu.
func bump(b *box, delta int) {
	b.n += delta
}

func newBox() *box {
	b := &box{}
	b.n = 1 // freshly constructed, not yet shared
	return b
}

func zeroValue() box {
	var b box
	b.n = 3 // freshly constructed
	return b
}

func spawn(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want `access to "n"`
	}()
	b.n++ // the spawning goroutine still holds the lock
}

func closureUnderLock(b *box, xs []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sort.Slice(xs, func(i, j int) bool {
		return xs[i] < xs[j] && b.n > 0 // closures inherit the held set
	})
}

func loopBalanced(b *box) {
	for i := 0; i < 3; i++ {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
	b.free++
}

type rwbox struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (r *rwbox) get() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (r *rwbox) bad() int {
	return r.v // want `access to "v"`
}

// peer mirrors the transport's closed-check pattern: a select that
// unlocks and returns on one arm must leave the fallthrough arm held.
type peer struct {
	mu     sync.Mutex
	closed chan struct{}
	conns  map[int]int // guarded by mu
}

func (p *peer) add(id int) bool {
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		return false
	default:
	}
	p.conns[id] = id
	p.mu.Unlock()
	return true
}

// registry/entry exercise the cross-struct Type.mu guard form.
type registry struct {
	mu      sync.Mutex
	members map[int]*entry // guarded by mu
}

type entry struct {
	round int // guarded by registry.mu
}

func (r *registry) roundOf(id int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[id].round
}

func sneaky(e *entry) int {
	return e.round // want `access to "round" \(guarded by "mu"\)`
}

type broken struct {
	// guarded by nosuch
	x int // want "annotation does not name a sync.Mutex"
}

// stats exercises the atomic-mixing rule.
type stats struct {
	hits int64
	cold int64
}

func (s *stats) inc()        { atomic.AddInt64(&s.hits, 1) }
func (s *stats) load() int64 { return atomic.LoadInt64(&s.hits) }

func (s *stats) raced() int64 {
	return s.hits // want `field "hits" mixes sync/atomic and plain access`
}

func (s *stats) plainOnly() int64 {
	return s.cold // never touched atomically: fine
}
