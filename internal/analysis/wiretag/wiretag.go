// Package wiretag guards the repo's wire formats against silent schema
// drift. A struct is a wire struct when any of the following holds:
//
//   - its doc comment contains the marker "snap:wire" (the opt-in used
//     by the control-plane payloads and codec frame types);
//   - at least one of its fields already carries a `json:` or `wire:`
//     struct tag (a partially tagged struct is a schema accident
//     waiting to happen);
//   - a value of the type is passed to encoding/json Marshal/Unmarshal
//     or an Encoder/Decoder in the same package.
//
// Every exported field of a wire struct must carry an explicit `json:`
// or `wire:` tag (`json:"-"` is an explicit decision and accepted), and
// no two fields may encode to the same name. An exported field added
// without a tag — the mistake that changes the epoch wire format
// without anyone noticing — is reported.
package wiretag

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

// Analyzer is the wiretag analysis.
var Analyzer = &lint.Analyzer{
	Name: "wiretag",
	Doc:  "check that every exported field of a wire struct (snap:wire marker, tagged sibling, or json-encoded) has an explicit json/wire tag",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	c := &checker{pass: pass, checked: make(map[*ast.StructType]bool)}

	// Structs json-encoded somewhere in this package are wire structs
	// even without tags or markers.
	jsonUsed := c.jsonEncodedStructs()

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				marked := hasWireMarker(gd.Doc) || hasWireMarker(ts.Doc) || hasWireMarker(ts.Comment)
				obj := pass.TypesInfo.Defs[ts.Name]
				if !marked && obj != nil {
					if named, ok := obj.Type().(*types.Named); ok && jsonUsed[named] {
						marked = true
					}
				}
				c.checkStruct(ts.Name.Name, st, marked)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass    *lint.Pass
	checked map[*ast.StructType]bool
}

func hasWireMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "snap:wire") {
			return true
		}
	}
	return false
}

// checkStruct enforces the tagging rule. When marked is false the
// struct is still a wire struct if any field already carries an
// encoding tag.
func (c *checker) checkStruct(name string, st *ast.StructType, marked bool) {
	if c.checked[st] {
		return
	}
	wire := marked
	if !wire {
		for _, field := range st.Fields.List {
			if _, ok := encodingTag(field); ok {
				wire = true
				break
			}
		}
	}
	if !wire {
		return
	}
	c.checked[st] = true

	names := make(map[string]string) // encoded name -> field
	for _, field := range st.Fields.List {
		fieldNames := field.Names
		if len(fieldNames) == 0 {
			// Embedded field: its exported name is the type name.
			if id := embeddedName(field.Type); id != nil {
				fieldNames = []*ast.Ident{id}
			}
		}
		tag, hasTag := encodingTag(field)
		for _, id := range fieldNames {
			if !id.IsExported() {
				continue
			}
			if !hasTag {
				c.pass.Reportf(id.Pos(), "exported field %s of wire struct %s has no json/wire tag; unencoded fields change the wire format silently", id.Name, name)
				continue
			}
			enc := tagName(tag)
			if enc == "-" || enc == "" {
				continue
			}
			if prev, dup := names[enc]; dup {
				c.pass.Reportf(id.Pos(), "field %s of wire struct %s encodes to %q, already used by field %s", id.Name, name, enc, prev)
				continue
			}
			names[enc] = id.Name
		}
	}
}

// encodingTag returns the json or wire tag value of a field.
func encodingTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw := strings.Trim(field.Tag.Value, "`")
	tag := reflect.StructTag(raw)
	if v, ok := tag.Lookup("json"); ok {
		return v, true
	}
	if v, ok := tag.Lookup("wire"); ok {
		return v, true
	}
	return "", false
}

func tagName(tag string) string {
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

func embeddedName(t ast.Expr) *ast.Ident {
	switch t := t.(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

// jsonEncodedStructs finds named struct types of this package that are
// passed to encoding/json calls (Marshal, Unmarshal, Encoder.Encode,
// Decoder.Decode).
func (c *checker) jsonEncodedStructs() map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !c.isJSONCodecCall(call) {
				return true
			}
			for _, a := range call.Args {
				t := c.pass.TypesInfo.Types[a].Type
				if t == nil {
					continue
				}
				for {
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
						continue
					}
					if s, ok := t.Underlying().(*types.Slice); ok {
						t = s.Elem()
						continue
					}
					break
				}
				named, ok := t.(*types.Named)
				if !ok || named.Obj().Pkg() != c.pass.Pkg {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); ok {
					out[named] = true
				}
			}
			return true
		})
	}
	return out
}

func (c *checker) isJSONCodecCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Marshal", "MarshalIndent", "Unmarshal", "Encode", "Decode":
	default:
		return false
	}
	// Package function: json.Marshal / json.Unmarshal.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			return pkg.Imported().Path() == "encoding/json"
		}
	}
	// Method: (*json.Encoder).Encode / (*json.Decoder).Decode.
	t := c.pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "encoding/json" &&
		(named.Obj().Name() == "Encoder" || named.Obj().Name() == "Decoder")
}
