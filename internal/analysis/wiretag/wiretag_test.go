package wiretag_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/wiretag"
)

func TestWiretag(t *testing.T) {
	analysistest.Run(t, "testdata", wiretag.Analyzer, "a")
}
