// Package a exercises the wiretag analyzer: partially tagged structs,
// snap:wire markers, json call-site detection, duplicate encoded
// names, and explicit opt-outs.
package a

import "encoding/json"

// Tagged became a wire struct the moment its first field was tagged;
// adding an untagged exported field is the drift wiretag exists for.
type Tagged struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Age  int    // want `exported field Age of wire struct Tagged has no json/wire tag`
	priv int    // unexported: not part of the wire format
}

// Marked opts in explicitly, as the control-plane payloads do.
//
//snap:wire
type Marked struct {
	A int `wire:"a"`
	B int // want `exported field B of wire struct Marked has no json/wire tag`
}

// Plain is never encoded and carries no tags: not a wire struct.
type Plain struct {
	X int
	Y int
}

type Dup struct {
	A int `json:"x"`
	B int `json:"x"` // want `field B of wire struct Dup encodes to "x", already used by field A`
}

type Skipped struct {
	A int `json:"a"`
	B int `json:"-"` // explicit exclusion is a decision, not an accident
}

// encoded is untagged and unmarked but passed to json.Marshal below,
// which makes it a wire struct.
type encoded struct {
	V int // want `exported field V of wire struct encoded has no json/wire tag`
	w int
}

func marshal() ([]byte, error) {
	return json.Marshal(encoded{})
}

// decoded is reached through a *json.Decoder method.
type decoded struct {
	R int // want `exported field R of wire struct decoded has no json/wire tag`
}

func decode(dec *json.Decoder) error {
	var d decoded
	return dec.Decode(&d)
}
