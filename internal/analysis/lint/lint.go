// Package lint is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a
// Pass hands it one typechecked package, and diagnostics flow back
// through Pass.Report. The repo cannot vendor x/tools (builds run
// offline), so snaplint's analyzers are written against this interface
// instead; it is deliberately API-compatible with the subset of
// go/analysis they need, so migrating to the real framework later is a
// matter of changing import paths.
//
// Compared to go/analysis this framework omits Requires/ResultOf
// (analyzer dependencies), but it does support Facts: an analyzer can
// attach serializable observations to package-level objects (or whole
// packages) of the unit it is analyzing, and later, when a dependent
// package is analyzed, query the facts of imported objects. Facts flow
// between compilation units through the driver — in-process for the
// `load`-based standalone driver, through the vet `.vetx` files for the
// unitchecker driver — which is what lets annotations like
// `//snap:alloc-free` propagate across package boundaries.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// A Fact is a cross-package observation about a package-level object or
// a package, exported by an analyzer while analyzing the declaring
// compilation unit and importable by the same analyzer from any
// dependent unit. Fact types must be pointers to JSON-serializable
// structs, be declared in Analyzer.FactTypes, and implement the AFact
// marker method.
type Fact interface {
	AFact() // dummy marker method
}

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `snaplint help`.
	Doc string

	// Run applies the analyzer to a single package. It may return a
	// result value (unused by the current drivers) and an error; an
	// error aborts the whole run, so analyzers report findings via
	// pass.Report instead.
	Run func(*Pass) (any, error)

	// FactTypes lists prototypes (e.g. new(isAllocFree)) of every fact
	// type the analyzer exports or imports. A fact of an undeclared
	// type is a driver error.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single typechecked package
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)

	// ExportObjectFact associates fact with obj, which must be a
	// package-level object (or method) declared by this pass's package.
	// Drivers install it; it is nil-safe to leave uninstalled in tests
	// that exercise a factless analyzer.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportObjectFact copies into fact the fact of matching type
	// previously exported for obj (by this pass or by the pass over
	// obj's declaring package) and reports whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportPackageFact associates fact with the current package.
	ExportPackageFact func(fact Fact)

	// ImportPackageFact copies into fact the fact of matching type
	// exported for pkg and reports whether one existed.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // optional sub-category within the analyzer
	Message  string
}

// Validate checks analyzer metadata the way go/analysis does, so a
// misregistered analyzer fails fast at driver start rather than
// producing anonymous diagnostics.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	factTypes := make(map[reflect.Type]string)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analyzer %q: missing Name or Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		for _, f := range a.FactTypes {
			if f == nil {
				return fmt.Errorf("analyzer %q: nil fact type", a.Name)
			}
			t := reflect.TypeOf(f)
			if t.Kind() != reflect.Pointer {
				return fmt.Errorf("analyzer %q: fact type %T is not a pointer", a.Name, f)
			}
			if prev, dup := factTypes[t]; dup {
				return fmt.Errorf("analyzers %q and %q share fact type %T", prev, a.Name, f)
			}
			factTypes[t] = a.Name
		}
	}
	return nil
}
