// Package lint is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a
// Pass hands it one typechecked package, and diagnostics flow back
// through Pass.Report. The repo cannot vendor x/tools (builds run
// offline), so snaplint's analyzers are written against this interface
// instead; it is deliberately API-compatible with the subset of
// go/analysis they need, so migrating to the real framework later is a
// matter of changing import paths.
//
// Compared to go/analysis this framework omits Requires/ResultOf
// (analyzer dependencies) and Facts (cross-package analysis): every
// snaplint analyzer is self-contained within one compilation unit.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `snaplint help`.
	Doc string

	// Run applies the analyzer to a single package. It may return a
	// result value (unused by the current drivers) and an error; an
	// error aborts the whole run, so analyzers report findings via
	// pass.Report instead.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single typechecked package
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // optional sub-category within the analyzer
	Message  string
}

// Validate checks analyzer metadata the way go/analysis does, so a
// misregistered analyzer fails fast at driver start rather than
// producing anonymous diagnostics.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analyzer %q: missing Name or Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
