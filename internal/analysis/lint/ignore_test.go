package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/snapml/snap/internal/analysis/lint"
)

func TestParseIgnore(t *testing.T) {
	tests := []struct {
		text      string
		ok        bool
		wantErr   bool
		analyzers []string
		reason    string
	}{
		{"//snaplint:ignore allocfree cold path", true, false, []string{"allocfree"}, "cold path"},
		{"//snaplint:ignore allocfree,golife shared reason", true, false, []string{"allocfree", "golife"}, "shared reason"},
		{"//snaplint:ignore", true, true, nil, ""},                       // no analyzer
		{"//snaplint:ignore allocfree", true, true, nil, ""},             // no reason
		{"//snaplint:ignore allocfree,,golife why", true, true, nil, ""}, // empty analyzer
		{"//snaplint:ignored allocfree why", false, false, nil, ""},      // prefix must end the word
		{"// snaplint:ignore allocfree why", false, false, nil, ""},
		{"plain comment", false, false, nil, ""},
	}
	for _, tt := range tests {
		analyzers, reason, ok, err := lint.ParseIgnore(tt.text)
		if ok != tt.ok || (err != nil) != tt.wantErr {
			t.Errorf("ParseIgnore(%q) = ok %v err %v, want ok %v err %v", tt.text, ok, err, tt.ok, tt.wantErr)
			continue
		}
		if tt.wantErr || !tt.ok {
			continue
		}
		if strings.Join(analyzers, ",") != strings.Join(tt.analyzers, ",") {
			t.Errorf("ParseIgnore(%q) analyzers = %v, want %v", tt.text, analyzers, tt.analyzers)
		}
		if reason != tt.reason {
			t.Errorf("ParseIgnore(%q) reason = %q, want %q", tt.text, reason, tt.reason)
		}
	}
}

// TestIgnoreIndex covers what the analysistest `// want` harness cannot:
// two line comments cannot share a source line, so the own-line /
// next-line span and the malformed-directive reporting are pinned here
// against a hand-built file.
func TestIgnoreIndex(t *testing.T) {
	src := `package p

//snaplint:ignore allocfree reason one
var a int // line 4: waived (directive line + 1)

var b int // line 6: not waived

//snaplint:ignore golife
var c int // line 9: directive above is malformed (no reason), so no waiver
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix := lint.NewIgnoreIndex(fset, []*ast.File{f})

	posOnLine := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !ix.Ignored(posOnLine(3), "allocfree") {
		t.Error("directive's own line not waived")
	}
	if !ix.Ignored(posOnLine(4), "allocfree") {
		t.Error("line below directive not waived")
	}
	if ix.Ignored(posOnLine(5), "allocfree") {
		t.Error("two lines below directive wrongly waived")
	}
	if ix.Ignored(posOnLine(4), "golife") {
		t.Error("unnamed analyzer wrongly waived")
	}
	if ix.Ignored(posOnLine(6), "allocfree") {
		t.Error("unrelated line wrongly waived")
	}
	if len(ix.Bad) != 1 {
		t.Fatalf("Bad = %d diagnostics, want 1 (the reasonless directive)", len(ix.Bad))
	}
	if !strings.Contains(ix.Bad[0].Message, "missing reason") {
		t.Errorf("Bad[0] = %q, want a missing-reason report", ix.Bad[0].Message)
	}
	if ix.Ignored(posOnLine(9), "golife") {
		t.Error("malformed directive must not waive anything")
	}
}

// FuzzParseIgnore pins the no-panic contract and the ok/err invariants
// for arbitrary comment text.
func FuzzParseIgnore(f *testing.F) {
	seeds := []string{
		"//snaplint:ignore allocfree reason",
		"//snaplint:ignore a,b,c reason words",
		"//snaplint:ignore",
		"//snaplint:ignore ,",
		"//snaplint:ignore\t\tx\t\ty",
		"//snaplint:ignoreX y z",
		"//snaplint:ignore \x00 \x00",
		strings.Repeat(",", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzers, reason, ok, err := lint.ParseIgnore(text)
		if !ok {
			if err != nil {
				t.Fatalf("ParseIgnore(%q): not a directive but err = %v", text, err)
			}
			return
		}
		if err != nil {
			return // malformed directive: surfaced as a finding, nothing else to hold
		}
		if len(analyzers) == 0 {
			t.Fatalf("ParseIgnore(%q) ok without analyzers", text)
		}
		for _, a := range analyzers {
			if a == "" {
				t.Fatalf("ParseIgnore(%q) produced an empty analyzer name", text)
			}
		}
		if reason == "" {
			t.Fatalf("ParseIgnore(%q) ok without a reason", text)
		}
	})
}
