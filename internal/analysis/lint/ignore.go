package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An ignore waiver suppresses snaplint diagnostics at a single site:
//
//	//snaplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive applies to diagnostics reported on its own line and on
// the line directly below it (so it works both as a trailing comment
// and as a standalone comment above the waived statement). The reason
// is mandatory: a waiver without a recorded justification is itself
// reported as a finding, as is one that names no analyzer.

// ignorePrefix is the exact directive prefix (no space after //, per
// the Go convention for machine-readable comments).
const ignorePrefix = "//snaplint:ignore"

// ParseIgnore parses one comment's text as an ignore directive. ok
// reports whether the comment is an ignore directive at all; err is
// non-nil when it is one but is malformed (no analyzers or no reason).
// It never panics on arbitrary input (fuzzed).
func ParseIgnore(text string) (analyzers []string, reason string, ok bool, err error) {
	rest, found := strings.CutPrefix(text, ignorePrefix)
	if !found {
		return nil, "", false, nil
	}
	// "//snaplint:ignoreX" is not the directive; require the prefix to
	// end the comment or be followed by whitespace.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true, fmt.Errorf("snaplint:ignore names no analyzer")
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name == "" {
			return nil, "", true, fmt.Errorf("snaplint:ignore has an empty analyzer name")
		}
		analyzers = append(analyzers, name)
	}
	if len(fields) < 2 {
		return analyzers, "", true, fmt.Errorf("snaplint:ignore %s: missing reason", fields[0])
	}
	return analyzers, strings.Join(fields[1:], " "), true, nil
}

// An IgnoreIndex answers "is this diagnostic waived?" for one
// compilation unit. Drivers build it from the unit's files and filter
// Report calls through Ignored; malformed directives surface via Bad.
type IgnoreIndex struct {
	// byLine maps file:line to the analyzer names waived on that line.
	byLine map[string]map[string]bool
	fset   *token.FileSet

	// Bad holds one diagnostic per malformed directive (missing
	// analyzer or reason). Drivers report them unconditionally.
	Bad []Diagnostic
}

// NewIgnoreIndex scans the files' comments for ignore directives.
func NewIgnoreIndex(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	ix := &IgnoreIndex{byLine: make(map[string]map[string]bool), fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzers, _, ok, err := ParseIgnore(c.Text)
				if !ok {
					continue
				}
				if err != nil {
					ix.Bad = append(ix.Bad, Diagnostic{Pos: c.Pos(), Message: err.Error()})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range analyzers {
					ix.add(pos.Filename, pos.Line, name)
					ix.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return ix
}

func (ix *IgnoreIndex) add(file string, line int, analyzer string) {
	k := fmt.Sprintf("%s:%d", file, line)
	m := ix.byLine[k]
	if m == nil {
		m = make(map[string]bool)
		ix.byLine[k] = m
	}
	m[analyzer] = true
}

// Ignored reports whether a diagnostic from the named analyzer at pos
// is waived.
func (ix *IgnoreIndex) Ignored(pos token.Pos, analyzer string) bool {
	if ix == nil || len(ix.byLine) == 0 {
		return false
	}
	p := ix.fset.Position(pos)
	return ix.byLine[fmt.Sprintf("%s:%d", p.Filename, p.Line)][analyzer]
}
