package snap

import (
	"github.com/snapml/snap/internal/controlplane"
	"github.com/snapml/snap/internal/weights"
)

// Elastic-cluster types, re-exported from the control plane. A
// Coordinator makes a TCP cluster elastic: nodes join and leave at
// runtime, and on every membership change the coordinator re-optimizes
// the mixing weight matrix W centrally (the paper's Section IV-B
// optimization assumes exactly this global view) and publishes a
// versioned Epoch that members apply at a round boundary.
type (
	// Coordinator is the elastic-cluster control-plane service.
	Coordinator = controlplane.Coordinator
	// CoordinatorConfig configures NewCoordinator.
	CoordinatorConfig = controlplane.CoordinatorConfig
	// Epoch is one versioned cluster configuration: members, topology,
	// and per-node weight rows.
	Epoch = controlplane.Epoch
	// EpochMember is one member as described by an Epoch.
	EpochMember = controlplane.EpochMember
	// BoundParams are the problem constants of the paper's simplified
	// convergence-rate bound (eq. 17), used to pick the best W candidate.
	BoundParams = weights.BoundParams
)

// NewCoordinator starts an elastic-cluster coordinator. Point each node's
// PeerConfig.CoordinatorAddr at its Addr().
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return controlplane.NewCoordinator(cfg)
}

// OptimizeWeightRows runs the paper's centralized weight-matrix
// optimization (Section IV-B: solve the spectral problems over the
// topology, keep the candidate with the best convergence bound, never
// worse than Metropolis) and returns one mixing row per node, for
// distribution to static multi-process clusters via PeerConfig.WRow.
// Zero-valued bound and opts select the documented defaults.
func OptimizeWeightRows(topo *Topology, bound BoundParams, opts WeightOptions) ([]Vector, error) {
	res, err := weights.OptimizeBest(topo, bound, opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Vector, topo.N())
	for i := range rows {
		rows[i] = res.W.Row(i)
	}
	return rows, nil
}
