package snap

import (
	"net/http"

	"github.com/snapml/snap/internal/serve"
)

// Inference serving: a ParamFeed is the hot-swap point between training
// and serving (publish a model version, readers always see a complete
// snapshot), and a Gateway coalesces prediction requests into
// micro-batches with admission control, exposed over HTTP by
// GatewayHandler. See DESIGN.md §13 and the "Serving predictions"
// walkthrough in README.md.
type (
	// ParamFeed holds the current model snapshot and swaps in new
	// versions atomically. Attach one to a training node via
	// PeerConfig.Feed (or publish into it yourself) and serve from it
	// with a Gateway; expose it to remote gateways with ParamsHandler.
	ParamFeed = serve.Feed
	// ModelSnapshot is one immutable published model version.
	ModelSnapshot = serve.Snapshot
	// Gateway batches prediction requests against a feed's snapshot.
	Gateway = serve.Gateway
	// GatewayConfig parameterizes NewGateway (model, feature dim,
	// batching, queue bounds, deadlines, observability).
	GatewayConfig = serve.Config
	// ModelVersion stamps a prediction with the training round and
	// control-plane epoch of the snapshot that produced it.
	ModelVersion = serve.Version
	// Follower polls a training node's /params endpoint and hot-loads
	// new snapshots into a gateway.
	Follower = serve.Follower
)

// Gateway admission errors (HTTP: 429, 503, 503).
var (
	ErrOverloaded = serve.ErrOverloaded
	ErrNoModel    = serve.ErrNoModel
	ErrClosed     = serve.ErrClosed
)

// NewParamFeed returns an empty feed. Publish model versions into it
// (PeerConfig.Feed does this every round) and serve from it with a
// Gateway.
func NewParamFeed() *ParamFeed { return serve.NewFeed() }

// NewGateway starts a prediction gateway; callers must Close it.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return serve.NewGateway(cfg) }

// GatewayHandler is the gateway's HTTP API: POST /v1/predict,
// GET/PUT /v1/model, /healthz, /readyz.
func GatewayHandler(g *Gateway) http.Handler { return serve.NewHTTPHandler(g) }

// ParamsHandler serves a feed's current snapshot as a checkpoint stream
// (the format Follower polls). Mount it on a training node's
// observability server via ObserveConfig.Params.
func ParamsHandler(f *ParamFeed) http.Handler { return serve.ParamsHandler(f) }
