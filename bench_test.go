// Benchmark harness: one benchmark per figure of the paper's evaluation,
// plus microbenchmarks and ablations. Each figure benchmark regenerates
// the figure's series (quick workloads; use cmd/snapsim for full scale),
// prints the table once, and reports the figure's headline quantities as
// custom benchmark metrics.
//
//	go test -bench=. -benchmem
package snap_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/snapml/snap"
	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/experiments"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/weights"
)

// figCache computes each figure once per benchmark binary run; the
// sub-benchmarks of a figure then report different series of the same
// result instead of re-running multi-second trainings.
var figCache = struct {
	mu   sync.Mutex
	done map[string]*experiments.FigResult
}{done: map[string]*experiments.FigResult{}}

func cachedFig(b *testing.B, id string, f func(experiments.Options) (*experiments.FigResult, error)) *experiments.FigResult {
	b.Helper()
	figCache.mu.Lock()
	defer figCache.mu.Unlock()
	if r, ok := figCache.done[id]; ok {
		return r
	}
	r, err := f(experiments.Options{Quick: true, Seed: 1})
	if err != nil {
		b.Fatalf("figure %s: %v", id, err)
	}
	figCache.done[id] = r
	fmt.Print(r.Render())
	return r
}

func seriesOf(b *testing.B, fig *experiments.FigResult, table int, name string) []float64 {
	b.Helper()
	for _, s := range fig.Tables[table].Series {
		if s.Name == name {
			return s.Points
		}
	}
	b.Fatalf("table %q has no series %q", fig.Tables[table].Title, name)
	return nil
}

func lastOf(xs []float64) float64 { return xs[len(xs)-1] }

func BenchmarkFig2ParameterEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "2", experiments.Fig2)
		unchanged := seriesOf(b, fig, 0, "unchanged(|dx|=0)")
		b.ReportMetric(unchanged[0], "unchangedFracIter1")
		b.ReportMetric(lastOf(unchanged), "unchangedFracLast")
	}
}

func BenchmarkFig4aTestbedAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "4", experiments.Fig4)
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "snap")), "snapFinalAcc")
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "centralized")), "centralFinalAcc")
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "terngrad")), "terngradFinalAcc")
	}
}

func BenchmarkFig4bPerIterationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "4", experiments.Fig4)
		snap := seriesOf(b, fig, 1, "snap")
		sno := seriesOf(b, fig, 1, "sno")
		b.ReportMetric(lastOf(snap)/lastOf(sno), "snapOverSnoLastRound")
	}
}

func BenchmarkFig4cTotalCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "4", experiments.Fig4)
		b.ReportMetric(seriesOf(b, fig, 2, "snap")[0]/seriesOf(b, fig, 2, "ps")[0], "snapOverPS")
		b.ReportMetric(seriesOf(b, fig, 2, "snap")[0]/seriesOf(b, fig, 2, "snap-0")[0], "snapOverSnap0")
		b.ReportMetric(seriesOf(b, fig, 2, "sno")[0]/seriesOf(b, fig, 2, "ps")[0], "snoOverPS")
	}
}

func BenchmarkFig5WeightMatrixOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "5", experiments.Fig5)
		plain := seriesOf(b, fig, 0, "snap")
		opt := seriesOf(b, fig, 0, "snap+wopt")
		b.ReportMetric(lastOf(plain)-lastOf(opt), "iterSavedLargestNet")
	}
}

func BenchmarkFig6ConvergenceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "6", experiments.Fig6)
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "snap")), "snapItersLargestNet")
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "terngrad")), "terngradItersLargestNet")
	}
}

func BenchmarkFig7Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "7", experiments.Fig7)
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "snap")), "snapAccLargestNet")
		b.ReportMetric(lastOf(seriesOf(b, fig, 0, "centralized")), "centralAccLargestNet")
	}
}

func BenchmarkFig8aCostVsScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "8", experiments.Fig8)
		snapCost := lastOf(seriesOf(b, fig, 0, "snap"))
		b.ReportMetric(snapCost/lastOf(seriesOf(b, fig, 0, "ps")), "snapOverPS")
		b.ReportMetric(snapCost/lastOf(seriesOf(b, fig, 0, "terngrad")), "snapOverTernGrad")
	}
}

func BenchmarkFig8bCostSparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "8", experiments.Fig8)
		s := seriesOf(b, fig, 1, "snap")
		b.ReportMetric(lastOf(s)/s[0], "costMaxDegOverMinDeg")
	}
}

func BenchmarkFig8cCostDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "8", experiments.Fig8)
		s := seriesOf(b, fig, 2, "snap")
		b.ReportMetric(lastOf(s)/s[0], "costMaxDegOverMinDeg")
	}
}

func BenchmarkFig9Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := cachedFig(b, "9", experiments.Fig9)
		iters := seriesOf(b, fig, 0, "snap")
		b.ReportMetric(lastOf(iters)/iters[0], "iterOverheadAt5pct")
	}
}

// BenchmarkFrameCodec measures the wire codec itself: Diff → Encode →
// Decode → Apply round trips on a 24-parameter SVM-sized update with half
// the parameters withheld (§IV-C frame formats).
func BenchmarkFrameCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const p = 24
	baseline := make([]float64, p)
	current := make([]float64, p)
	for i := range baseline {
		baseline[i] = rng.NormFloat64()
		if i%2 == 0 {
			current[i] = baseline[i] + rng.NormFloat64()
		} else {
			current[i] = baseline[i]
		}
	}
	dst := make([]float64, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := codec.Diff(0, i, baseline, current, 0)
		if err != nil {
			b.Fatal(err)
		}
		frame, _, err := codec.Encode(u)
		if err != nil {
			b.Fatal(err)
		}
		got, err := codec.Decode(frame)
		if err != nil {
			b.Fatal(err)
		}
		copy(dst, baseline)
		if err := codec.Apply(dst, got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymEigen measures the Jacobi eigensolver on a 60-node weight
// matrix — the inner loop of the spectral optimizer.
func BenchmarkSymEigen(b *testing.B) {
	g := graph.RandomConnected(60, 3, rand.New(rand.NewSource(2)))
	w := weights.Metropolis(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigen(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraRound measures one full simulated SNAP round (broadcast,
// integrate, EXTRA step) on a 20-node network.
func BenchmarkExtraRound(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 2000}, rng)
	parts, err := data.Partition(20, rng)
	if err != nil {
		b.Fatal(err)
	}
	res, err := snap.Train(snap.Config{
		Topology:      snap.RandomTopology(20, 3, 4),
		Model:         snap.NewLinearSVM(data.NumFeature),
		Partitions:    parts,
		Alpha:         0.1,
		Policy:        snap.SNAP,
		MaxIterations: b.N,
		Convergence:   snap.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
		Seed:          5,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Iterations != b.N {
		b.Fatalf("ran %d rounds, want %d", res.Iterations, b.N)
	}
	b.ReportMetric(res.TotalCost/float64(res.Iterations), "bytes/round")
}

// BenchmarkAblationWeightObjective compares the spectral objectives the
// optimizer can target (DESIGN.md §5): the figure of merit is the
// resulting λ̄max (smaller = faster mixing).
func BenchmarkAblationWeightObjective(b *testing.B) {
	g := graph.RandomConnected(40, 3, rand.New(rand.NewSource(6)))
	base, err := linalg.AnalyzeSpectrum(weights.Metropolis(g, 0))
	if err != nil {
		b.Fatal(err)
	}
	for _, obj := range []weights.Objective{
		weights.MinimizeLambdaBarMax,
		weights.MaximizeLambdaMin,
		weights.MinimizeSLEM,
		weights.JointSpectral,
	} {
		b.Run(obj.String(), func(b *testing.B) {
			var lbm float64
			for i := 0; i < b.N; i++ {
				res, err := weights.Optimize(g, obj, weights.Options{Iterations: 150, Step: 3})
				if err != nil {
					b.Fatal(err)
				}
				lbm = res.Spectrum.LambdaBarMax
			}
			b.ReportMetric(lbm, "lambdaBarMax")
			b.ReportMetric(base.LambdaBarMax, "metropolisLambdaBarMax")
		})
	}
}

// BenchmarkAblationAPESchedule sweeps the APE initial-threshold fraction
// (paper default 0.1): larger thresholds trade accuracy for traffic.
func BenchmarkAblationAPESchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 4000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(4, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		b.Run(fmt.Sprintf("fraction=%.1f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := snap.Train(snap.Config{
					Topology:      snap.CompleteTopology(4),
					Model:         snap.NewLinearSVM(data.NumFeature),
					Partitions:    parts,
					Test:          test,
					Alpha:         0.1,
					Policy:        snap.SNAP,
					APE:           snap.APEConfig{InitialFraction: frac},
					MaxIterations: 300,
					Convergence:   metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.01},
					Seed:          8,
					EvalEvery:     100,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalCost, "totalCost")
				b.ReportMetric(res.FinalAccuracy, "accuracy")
			}
		})
	}
}

// BenchmarkAblationRecursionRestart compares the two readings of
// Algorithm 1's stage transition (continue vs restart the EXTRA
// recursion); restarting suppresses the late-training send decay.
func BenchmarkAblationRecursionRestart(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 4000}, rng)
	parts, err := data.Partition(4, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, restart := range []bool{false, true} {
		b.Run(fmt.Sprintf("restart=%v", restart), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := snap.Train(snap.Config{
					Topology:      snap.CompleteTopology(4),
					Model:         snap.NewLinearSVM(data.NumFeature),
					Partitions:    parts,
					Alpha:         0.1,
					Policy:        snap.SNAP,
					APE:           snap.APEConfig{RestartRecursion: restart},
					MaxIterations: 250,
					Convergence:   metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
					Seed:          10,
				})
				if err != nil {
					b.Fatal(err)
				}
				late := res.PerRoundCost[len(res.PerRoundCost)-1]
				b.ReportMetric(late, "lastRoundBytes")
				b.ReportMetric(res.TotalCost, "totalCost")
			}
		})
	}
}

// BenchmarkAblationDataHeterogeneity contrasts IID random splits with
// Dirichlet label-skewed shards (the heterogeneous edge-data regime the
// paper motivates): under skew the nodes genuinely disagree and network
// mixing becomes the bottleneck.
func BenchmarkAblationDataHeterogeneity(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	train, test := snap.SyntheticDigits(snap.DigitsConfig{Train: 1200, Test: 300, Side: 12, Noise: 0.3}, rng)
	model := snap.NewMLP(train.NumFeature, 16, 10)
	topo := snap.RandomTopology(6, 3, 12)

	for _, tc := range []struct {
		name  string
		parts func() []*snap.Dataset
	}{
		{"iid", func() []*snap.Dataset {
			parts, err := train.Partition(6, rand.New(rand.NewSource(13)))
			if err != nil {
				b.Fatal(err)
			}
			return parts
		}},
		{"dirichlet0.2", func() []*snap.Dataset {
			parts, err := train.PartitionNonIID(6, 0.2, rand.New(rand.NewSource(13)))
			if err != nil {
				b.Fatal(err)
			}
			return parts
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			parts := tc.parts()
			for i := 0; i < b.N; i++ {
				res, err := snap.Train(snap.Config{
					Topology: topo, Model: model, Partitions: parts, Test: test,
					Alpha: 0.3, Policy: snap.SNAP0, MaxIterations: 60,
					Convergence: metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
					Seed:        14, EvalEvery: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalAccuracy, "accuracy")
				if stat, ok := res.Trace.Last(); ok {
					b.ReportMetric(stat.Consensus, "consensusResidual")
				}
			}
		})
	}
}

// BenchmarkAblationFloat32Wire measures the float32 wire extension: the
// same SNAP run with 64-bit vs 32-bit value encoding. Accuracy is
// unaffected (rounding ~1e-7 is far below the APE thresholds); bytes drop
// by roughly a third to a half depending on frame mix.
func BenchmarkAblationFloat32Wire(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 4000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(6, rand.New(rand.NewSource(16)))
	if err != nil {
		b.Fatal(err)
	}
	for _, f32 := range []bool{false, true} {
		b.Run(fmt.Sprintf("float32=%v", f32), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := snap.Train(snap.Config{
					Topology:      snap.RandomTopology(6, 3, 17),
					Model:         snap.NewLinearSVM(data.NumFeature),
					Partitions:    parts,
					Test:          test,
					Alpha:         0.1,
					Policy:        snap.SNAP,
					Float32Wire:   f32,
					MaxIterations: 200,
					Convergence:   metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.01},
					Seed:          18,
					EvalEvery:     100,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalCost, "totalCost")
				b.ReportMetric(res.FinalAccuracy, "accuracy")
			}
		})
	}
}

// BenchmarkAblationTopologyFamily runs SNAP across topology families at
// equal edge budgets: random, small-world, scale-free, ring. Real edge
// deployments are rarely uniform-random; the family determines mixing
// speed and therefore iterations and cost.
func BenchmarkAblationTopologyFamily(b *testing.B) {
	const servers = 24
	rng := rand.New(rand.NewSource(19))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 5000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(servers, rand.New(rand.NewSource(20)))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo *snap.Topology
	}{
		{"random-deg4", snap.RandomTopology(servers, 4, 21)},
		{"small-world", snap.SmallWorldTopology(servers, 4, 0.3, 21)},
		{"scale-free", snap.ScaleFreeTopology(servers, 2, 21)},
		{"ring", snap.RingTopology(servers)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := snap.Train(snap.Config{
					Topology:      tc.topo,
					Model:         snap.NewLinearSVM(data.NumFeature),
					Partitions:    parts,
					Test:          test,
					Alpha:         0.1,
					Policy:        snap.SNAP,
					PerNodeInit:   true,
					MaxIterations: 400,
					Convergence:   metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.005},
					Seed:          22,
					EvalEvery:     100,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iterations")
				b.ReportMetric(res.TotalCost, "totalCost")
				b.ReportMetric(res.FinalAccuracy, "accuracy")
			}
		})
	}
}

// BenchmarkAblationDGDvsEXTRA contrasts the inexact classic decentralized
// gradient descent with EXTRA (SNAP-0) on label-skewed shards: both learn,
// but DGD's consensus disagreement stalls at O(α·heterogeneity) while
// EXTRA's decays to numerical zero — the property that justifies the
// paper's choice of EXTRA.
func BenchmarkAblationDGDvsEXTRA(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 3000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.PartitionNonIID(6, 0.2, rng)
	if err != nil {
		b.Fatal(err)
	}
	topo := snap.RandomTopology(6, 3, 24)
	noStop := metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}
	base := snap.BaselineConfig{
		Topology: topo, Model: snap.NewLinearSVM(data.NumFeature), Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 300, Convergence: noStop, EvalEvery: 100, Seed: 25,
	}
	b.Run("dgd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := snap.TrainDGD(base)
			if err != nil {
				b.Fatal(err)
			}
			if stat, ok := res.Trace.Last(); ok {
				b.ReportMetric(stat.Consensus, "finalConsensus")
			}
			b.ReportMetric(res.FinalAccuracy, "accuracy")
		}
	})
	b.Run("extra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := snap.Train(snap.Config{
				Topology: topo, Model: base.Model, Partitions: parts, Test: test,
				Alpha: 0.1, Policy: snap.SNAP0, MaxIterations: 300,
				Convergence: noStop, EvalEvery: 100, Seed: 25,
			})
			if err != nil {
				b.Fatal(err)
			}
			if stat, ok := res.Trace.Last(); ok {
				b.ReportMetric(stat.Consensus, "finalConsensus")
			}
			b.ReportMetric(res.FinalAccuracy, "accuracy")
		}
	})
}
