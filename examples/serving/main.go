// Serving predictions from a live SNAP cluster.
//
// A 3-node TCP cluster trains the paper's credit-default SVM while an
// inference gateway serves predictions from the very same process the
// whole time: node 0 publishes each round's iterate into a ParamFeed,
// and the gateway hot-swaps every published snapshot in atomically —
// requests in flight keep the version they started with, new requests
// see the new round. The example watches held-out accuracy climb while
// training is still running, then takes the final model over the HTTP
// API exactly as an external client would.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/snapml/snap"
)

func main() {
	const nodes, rounds = 3, 60

	// Data and topology: the paper's synthetic credit-default task.
	rng := rand.New(rand.NewSource(4))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 6000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(nodes, rng)
	if err != nil {
		log.Fatal(err)
	}
	topo := snap.CompleteTopology(nodes)

	// The feed is the training→serving handoff: node 0 publishes into
	// it, the gateway reads from it. No file, no copy of the cluster.
	feed := snap.NewParamFeed()
	gw, err := snap.NewGateway(snap.GatewayConfig{
		Model:    snap.NewLinearSVM(data.NumFeature),
		Features: data.NumFeature,
		Feed:     feed,
		MaxBatch: 64,
		MaxWait:  time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	// Launch the cluster; node 0 carries the feed.
	addrs := make([]string, nodes)
	peers := make([]*snap.PeerNode, nodes)
	for i := range peers {
		cfg := snap.PeerConfig{
			ID: i, Topology: topo, Model: snap.NewLinearSVM(data.NumFeature),
			Data: parts[i], Alpha: 0.1, Seed: 1,
			ListenAddr: "127.0.0.1:0", RoundTimeout: 10 * time.Second,
		}
		if i == 0 {
			cfg.Feed = feed
		}
		pn, err := snap.NewPeerNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer pn.Close()
		peers[i] = pn
		addrs[i] = pn.Addr()
	}
	var wg sync.WaitGroup
	for i, pn := range peers {
		neighbors := make(map[int]string)
		for _, j := range topo.Neighbors(i) {
			neighbors[j] = addrs[j]
		}
		wg.Add(1)
		go func(pn *snap.PeerNode, neighbors map[int]string) {
			defer wg.Done()
			if err := pn.Connect(neighbors); err != nil {
				log.Fatal(err)
			}
			if _, err := pn.Run(rounds); err != nil {
				log.Fatal(err)
			}
		}(pn, neighbors)
	}

	// Serve while training: the gateway answers as soon as round 0 is
	// published, and every answer is stamped with the round it used.
	ctx := context.Background()
	labels := make([]int, len(test.Samples))
	rows := make([][]float64, len(test.Samples))
	for i, s := range test.Samples {
		rows[i] = s.X
	}
	lastRound := -1
	for done := false; !done; {
		time.Sleep(2 * time.Millisecond)
		v, err := gw.PredictManyInto(ctx, labels, rows)
		if err == snap.ErrNoModel {
			continue // round 0 not published yet
		} else if err != nil {
			log.Fatal(err)
		}
		if v.Round == lastRound {
			continue
		}
		lastRound = v.Round
		correct := 0
		for i, s := range test.Samples {
			if labels[i] == s.Label {
				correct++
			}
		}
		fmt.Printf("serving model round %2d: held-out accuracy %.4f\n",
			v.Round, float64(correct)/float64(len(test.Samples)))
		done = v.Round >= rounds-1
	}
	wg.Wait()

	// The same model over the wire, as an external client sees it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: snap.GatewayHandler(gw)}
	go srv.Serve(ln)
	defer srv.Close()

	body := fmt.Sprintf(`{"features":[%s]}`, joinFloats(test.Samples[0].X))
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/predict", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v1/predict -> %s\n%s\n", resp.Status, out.String())
}

func joinFloats(xs []float64) string {
	var b bytes.Buffer
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", x)
	}
	return b.String()
}
