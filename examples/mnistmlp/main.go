// MNIST-style MLP: the paper's 3-server testbed experiment, simulated.
//
// Three fully connected edge servers train the 784-30-10 network on a
// synthetic digit task. The example prints the accuracy trajectory of SNAP
// next to centralized training and shows SNAP's per-iteration traffic
// collapsing as the model converges — the paper's Fig. 4 in miniature.
//
//	go run ./examples/mnistmlp
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/snapml/snap"
)

func main() {
	const (
		servers    = 3
		iterations = 40
	)

	rng := rand.New(rand.NewSource(4))
	train, test := snap.SyntheticDigits(snap.DigitsConfig{
		Train: 1200, Test: 300, Noise: 0.4, Shift: 3,
	}, rng)
	parts, err := train.Partition(servers, rng)
	if err != nil {
		log.Fatal(err)
	}
	model := snap.NewMLP(train.NumFeature, 30, 10) // the paper's 784-30-10 net

	noStop := snap.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}
	res, err := snap.Train(snap.Config{
		Topology:      snap.CompleteTopology(servers),
		Model:         model,
		Partitions:    parts,
		Test:          test,
		Alpha:         0.5,
		Policy:        snap.SNAP,
		MaxIterations: iterations,
		Convergence:   noStop,
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}
	central, err := snap.TrainCentralized(snap.BaselineConfig{
		Model: model, Partitions: parts, Test: test,
		Alpha: 0.5, MaxIterations: iterations, Convergence: noStop, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %12s %12s %14s\n", "iter", "snap acc", "central acc", "snap bytes/it")
	for i := 4; i < iterations; i += 5 {
		fmt.Printf("%-6d %12.4f %12.4f %14.0f\n",
			i+1,
			res.Trace.Stats[i].Accuracy,
			central.Trace.Stats[i].Accuracy,
			res.Trace.Stats[i].RoundCost)
	}
	fmt.Printf("\nSNAP matched centralized accuracy within %.4f while sending %.0f bytes total.\n",
		abs(res.FinalAccuracy-central.FinalAccuracy), res.TotalCost)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
