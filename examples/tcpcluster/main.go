// TCP cluster: five real SNAP peers training over localhost sockets.
//
// Unlike the simulated examples, each edge server here is a full TCP
// endpoint (the same code path cmd/snapnode uses in multi-process
// deployments): peers listen on ephemeral ports, dial their topology
// neighbors, and exchange length-prefixed selected-parameter frames with
// RIP-style round synchronization. The example runs all five peers as
// goroutines in one process so it needs no orchestration.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"github.com/snapml/snap"
)

func main() {
	const (
		servers = 5
		rounds  = 80
	)

	topo := snap.RandomTopology(servers, 3, 11)
	rng := rand.New(rand.NewSource(12))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 6000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(servers, rng)
	if err != nil {
		log.Fatal(err)
	}
	model := snap.NewLinearSVM(data.NumFeature)

	// Phase 1: start every peer on an ephemeral port.
	nodes := make([]*snap.PeerNode, servers)
	addrs := make(map[int]string, servers)
	for i := range nodes {
		node, err := snap.NewPeerNode(snap.PeerConfig{
			ID:         i,
			Topology:   topo,
			Model:      model,
			Data:       parts[i],
			Alpha:      0.1,
			Policy:     snap.SNAP,
			Seed:       13,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		defer node.Close()
	}

	// Phase 2: connect the mesh and train, one goroutine per edge server.
	var wg sync.WaitGroup
	errs := make([]error, servers)
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *snap.PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range topo.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			if err := node.Connect(neighbors); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = node.Run(rounds)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
	}

	fmt.Printf("%-6s %12s %12s %12s\n", "node", "accuracy", "bytes sent", "neighbors")
	for i, node := range nodes {
		acc := snap.Accuracy(model, node.Engine().Params(), test)
		fmt.Printf("%-6d %12.4f %12d %12v\n", i, acc, node.BytesSent(), topo.Neighbors(i))
	}

	// All peers agree: the models are interchangeable after consensus.
	ref := nodes[0].Engine().Params()
	worst := 0.0
	for _, node := range nodes[1:] {
		if d := node.Engine().Params().Sub(ref).NormInf(); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax cross-node parameter disagreement after %d rounds: %.2e\n", rounds, worst)
}
