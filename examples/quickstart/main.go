// Quickstart: train a model across eight edge servers with SNAP.
//
// Eight simulated edge servers hold disjoint shards of a credit-default
// dataset and collaboratively train one SVM by exchanging only selected
// parameters with their topology neighbors — no parameter server, no raw
// data movement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/snapml/snap"
)

func main() {
	const servers = 8

	// A connected random edge network with ~3 neighbors per server.
	topo := snap.RandomTopology(servers, 3, 1)

	// Synthetic stand-in for the UCI credit-default data (24 features).
	rng := rand.New(rand.NewSource(2))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 8000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(servers, rng)
	if err != nil {
		log.Fatal(err)
	}

	res, err := snap.Train(snap.Config{
		Topology:      topo,
		Model:         snap.NewLinearSVM(data.NumFeature),
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        snap.SNAP, // selective transmission with APE thresholds
		MaxIterations: 300,
		Convergence:   snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.01},
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged:        %v after %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("test accuracy:    %.4f\n", res.FinalAccuracy)
	fmt.Printf("aggregate loss:   %.4f\n", res.FinalLoss)
	fmt.Printf("bytes exchanged:  %.0f (hop-weighted)\n", res.TotalCost)
	if stat, ok := res.Trace.Last(); ok {
		fmt.Printf("final consensus:  %.2e (max node disagreement)\n", stat.Consensus)
	}
}
