// Credit-default SVM: compare SNAP against every baseline the paper uses.
//
// Reproduces a single point of the paper's large-scale simulations: a
// 30-server random edge network trains a 24-parameter SVM on
// credit-default data under six schemes, then reports iterations to
// convergence, accuracy, and hop-weighted communication cost side by side.
//
//	go run ./examples/creditsvm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/snapml/snap"
)

func main() {
	const servers = 30

	topo := snap.RandomTopology(servers, 3, 7)
	rng := rand.New(rand.NewSource(8))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 15000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(servers, rng)
	if err != nil {
		log.Fatal(err)
	}
	model := snap.NewLinearSVM(data.NumFeature)
	detector := snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.01}

	type row struct {
		name string
		run  func() (*snap.Result, error)
	}
	base := snap.BaselineConfig{
		Topology: topo, Model: model, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 400, EvalEvery: 100, Seed: 9,
		Convergence: snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3},
	}
	ternCfg := base
	ternCfg.BatchSize = 2 // TernGrad runs in its native minibatch regime

	decentralized := func(policy snap.SendPolicy) func() (*snap.Result, error) {
		return func() (*snap.Result, error) {
			return snap.Train(snap.Config{
				Topology: topo, Model: model, Partitions: parts, Test: test,
				Alpha: 0.1, Policy: policy, OptimizeWeights: true,
				MaxIterations: 400, Convergence: detector, EvalEvery: 100, Seed: 9,
			})
		}
	}

	rows := []row{
		{"centralized", func() (*snap.Result, error) { return snap.TrainCentralized(base) }},
		{"snap", decentralized(snap.SNAP)},
		{"snap-0", decentralized(snap.SNAP0)},
		{"sno", decentralized(snap.SNO)},
		{"ps", func() (*snap.Result, error) { return snap.TrainPS(base) }},
		{"terngrad", func() (*snap.Result, error) { return snap.TrainTernGrad(ternCfg) }},
	}

	fmt.Printf("%-12s %10s %10s %16s\n", "scheme", "iters", "accuracy", "cost (hop-bytes)")
	for _, r := range rows {
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("%-12s %10d %10.4f %16.0f\n", r.name, res.Iterations, res.FinalAccuracy, res.TotalCost)
	}
}
