// Heterogeneous data: why SNAP builds on EXTRA instead of plain
// decentralized gradient descent.
//
// Real edge servers see non-IID data — a base station in a business
// district and one in a residential area observe very different samples.
// This example shards a credit-default dataset by label skew (Dirichlet
// concentration 0.2: most servers see mostly one class), then trains with
// classic decentralized gradient descent (DGD) and with SNAP.
//
// Both learn, but DGD's servers never agree: with a constant step size
// each server's local gradient keeps pulling it toward its own shard's
// optimum, so the cross-server disagreement stalls at a plateau. SNAP's
// EXTRA iteration carries a correction term that cancels exactly that
// bias — its disagreement keeps decaying toward zero while DGD's is flat.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/snapml/snap"
)

func main() {
	const (
		servers = 8
		rounds  = 600
	)

	rng := rand.New(rand.NewSource(30))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 8000}, rng)
	train, test := data.Split(0.85, rng)

	// Label-skewed shards: Dirichlet(0.2) gives most servers a heavy
	// majority of a single class.
	parts, err := train.PartitionNonIID(servers, 0.2, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range parts {
		pos := 0
		for _, s := range p.Samples {
			pos += s.Label
		}
		fmt.Printf("server %d: %4d samples, %5.1f%% positive\n",
			i, p.Len(), 100*float64(pos)/float64(p.Len()))
	}

	topo := snap.RandomTopology(servers, 3, 31)
	model := snap.NewLinearSVM(data.NumFeature)
	noStop := snap.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}

	dgd, err := snap.TrainDGD(snap.BaselineConfig{
		Topology: topo, Model: model, Partitions: parts, Test: test,
		Alpha: 0.05, MaxIterations: rounds, Convergence: noStop,
		EvalEvery: 50, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	snapRes, err := snap.Train(snap.Config{
		Topology: topo, Model: model, Partitions: parts, Test: test,
		Alpha: 0.05, Policy: snap.SNAP, MaxIterations: rounds,
		Convergence: noStop, EvalEvery: 50, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncross-server disagreement over time:\n")
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "scheme", "round 150", "round 300", "round 450", "round 600")
	row := func(name string, res *snap.Result) {
		fmt.Printf("%-8s", name)
		for _, r := range []int{149, 299, 449, 599} {
			fmt.Printf(" %12.2e", res.Trace.Stats[r].Consensus)
		}
		fmt.Println()
	}
	row("dgd", dgd)
	row("snap", snapRes)
	fmt.Printf("\naccuracy: dgd %.4f, snap %.4f\n", dgd.FinalAccuracy, snapRes.FinalAccuracy)
	fmt.Println("DGD's disagreement is flat (the heterogeneity bias); SNAP's keeps shrinking.")
}
