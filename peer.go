package snap

import (
	"fmt"
	"time"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/weights"
)

// PeerNode is a real TCP edge server (the paper's testbed mode). Create
// one per process (or per goroutine) with NewPeerNode, Connect it to its
// neighbors, then Run a number of rounds.
type PeerNode = core.PeerNode

// PeerConfig configures one TCP edge server. Every participating node
// must use the same Topology, Model, Alpha, Policy and Seed so the
// cluster executes a single coherent EXTRA iteration.
type PeerConfig struct {
	// ID is this node's index in the topology.
	ID int
	// Topology is the shared neighbor graph; the node mixes with
	// Topology.Neighbors(ID).
	Topology *Topology
	// Model is the shared architecture.
	Model Model
	// Data is this node's local partition.
	Data *Dataset
	// Alpha is the EXTRA step size.
	Alpha float64
	// Policy selects SNAP / SNAP0 / SNO (default SNAP).
	Policy SendPolicy
	// APE tunes Algorithm 1.
	APE APEConfig
	// BatchSize limits per-iteration gradients (0 = full).
	BatchSize int
	// Seed derives the shared initial parameters; it must match across
	// nodes.
	Seed int64
	// RefreshEvery, when positive, broadcasts the complete parameter
	// vector every RefreshEvery rounds regardless of Policy — the
	// periodic full advertisement that heals receiver staleness from
	// dropped frames on lossy links.
	RefreshEvery int
	// RestartEvery, when positive, restarts the EXTRA recursion every
	// that many rounds, bounding the bias that rounds computed on stale
	// neighbor views bake into EXTRA's correction history.
	RestartEvery int
	// FullSendRound0 forces a complete parameter broadcast in round 0
	// (required when nodes do not share identical initial parameters).
	FullSendRound0 bool
	// ListenAddr is this node's TCP listen address ("127.0.0.1:0" for an
	// ephemeral port; neighbors are given to Connect after every listener
	// is up).
	ListenAddr string
	// RoundTimeout bounds the per-round wait for stragglers (default 5s).
	RoundTimeout time.Duration
	// ConnectTimeout bounds cluster formation (default 10s).
	ConnectTimeout time.Duration
	// Logf, when set, receives diagnostics about tolerated faults
	// (failed sends, reconnects, refreshes). Nil discards them.
	Logf func(format string, args ...any)
	// Obs, when set, receives the node's live metrics (per-link bytes,
	// gather waits, APE stage, round phase latencies) and JSONL
	// round-lifecycle events; serve them with ServeObservability. Nil
	// disables observation.
	Obs *Observer
}

// NewPeerNode builds a TCP edge server with the Metropolis weight row for
// its topology position. (Weight-matrix optimization requires global
// spectral information, so multi-process deployments either precompute
// the matrix centrally or use the Metropolis weights, as here.)
func NewPeerNode(cfg PeerConfig) (*PeerNode, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("snap: peer config requires a topology")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Topology.N() {
		return nil, fmt.Errorf("snap: peer id %d out of range for %d-node topology", cfg.ID, cfg.Topology.N())
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("snap: peer config requires a model")
	}
	w := weights.Metropolis(cfg.Topology, 0)
	return core.NewPeerNode(core.PeerNodeConfig{
		Engine: core.EngineConfig{
			ID:             cfg.ID,
			Model:          cfg.Model,
			Data:           cfg.Data,
			Alpha:          cfg.Alpha,
			WRow:           w.Row(cfg.ID),
			Neighbors:      cfg.Topology.Neighbors(cfg.ID),
			BatchSize:      cfg.BatchSize,
			Policy:         cfg.Policy,
			APE:            cfg.APE,
			RefreshEvery:   cfg.RefreshEvery,
			RestartEvery:   cfg.RestartEvery,
			FullSendRound0: cfg.FullSendRound0,
			Init:           cfg.Model.InitParams(cfg.Seed),
		},
		ListenAddr:     cfg.ListenAddr,
		RoundTimeout:   cfg.RoundTimeout,
		ConnectTimeout: cfg.ConnectTimeout,
		Logf:           cfg.Logf,
		Obs:            cfg.Obs,
	})
}
