package snap

import (
	"fmt"
	"math"
	"net"
	"time"

	"github.com/snapml/snap/internal/controlplane"
	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/weights"
)

// PeerNode is a real TCP edge server (the paper's testbed mode). Create
// one per process (or per goroutine) with NewPeerNode, Connect it to its
// neighbors, then Run a number of rounds.
type PeerNode = core.PeerNode

// PeerConfig configures one TCP edge server. Every participating node
// must use the same Topology, Model, Alpha, Policy and Seed so the
// cluster executes a single coherent EXTRA iteration.
type PeerConfig struct {
	// ID is this node's index in the topology. Ignored in elastic mode
	// (CoordinatorAddr set), where the coordinator assigns the id.
	ID int
	// Topology is the shared neighbor graph; the node mixes with
	// Topology.Neighbors(ID). Ignored in elastic mode, where the
	// coordinator owns the topology.
	Topology *Topology
	// WRow, when set, overrides the mixing weight row this node uses:
	// WRow[j] is w_{ID,j}. It must have Topology.N() entries, sum to 1,
	// and be zero everywhere except the diagonal and the node's topology
	// neighbors. Use OptimizeWeightRows to precompute optimized rows
	// centrally and distribute them; when nil, the node derives the
	// Metropolis row (which needs only local degree information). Ignored
	// in elastic mode, where every epoch carries coordinator-optimized
	// rows.
	WRow []float64
	// Model is the shared architecture.
	Model Model
	// Data is this node's local partition.
	Data *Dataset
	// DataForID, when set, supplies the local partition as a function of
	// the node id — needed in elastic mode when data assignment depends on
	// the id, which is unknown until the coordinator assigns it. Takes
	// precedence over Data.
	DataForID func(id int) *Dataset
	// Alpha is the EXTRA step size.
	Alpha float64
	// Policy selects SNAP / SNAP0 / SNO (default SNAP).
	Policy SendPolicy
	// APE tunes Algorithm 1.
	APE APEConfig
	// BatchSize limits per-iteration gradients (0 = full).
	BatchSize int
	// GradWorkers caps the goroutines used for the local gradient
	// (≤1 = serial). Any value produces bitwise-identical results.
	GradWorkers int
	// Float32Wire transmits parameter values as float32, halving value
	// bytes on the wire. All peers must agree on this setting.
	Float32Wire bool
	// Seed derives the shared initial parameters; it must match across
	// nodes.
	Seed int64
	// RefreshEvery, when positive, broadcasts the complete parameter
	// vector every RefreshEvery rounds regardless of Policy — the
	// periodic full advertisement that heals receiver staleness from
	// dropped frames on lossy links.
	RefreshEvery int
	// RestartEvery, when positive, restarts the EXTRA recursion every
	// that many rounds, bounding the bias that rounds computed on stale
	// neighbor views bake into EXTRA's correction history.
	RestartEvery int
	// FullSendRound0 forces a complete parameter broadcast in round 0
	// (required when nodes do not share identical initial parameters).
	FullSendRound0 bool
	// ListenAddr is this node's TCP listen address ("127.0.0.1:0" for an
	// ephemeral port; neighbors are given to Connect after every listener
	// is up).
	ListenAddr string
	// CoordinatorAddr, when set, switches the node to elastic mode: it
	// joins the cluster through the coordinator at this address, receives
	// its id, weight row, and neighbor set from the current epoch, and
	// applies later epochs (membership changes with re-optimized W) at
	// round boundaries. NewPeerNode blocks until the cluster's founding
	// quorum is complete, connects to the epoch's neighbors itself, and
	// returns a node ready to Run — do not call Connect.
	CoordinatorAddr string
	// Advertise is the data-plane address other members dial, when the
	// listener's own address (e.g. an ephemeral 127.0.0.1 port) is not
	// reachable from them. Elastic mode only.
	Advertise string
	// JoinWait bounds how long an elastic node waits in NewPeerNode for
	// the cluster's founding quorum (default 2 minutes).
	JoinWait time.Duration
	// RoundTimeout bounds the per-round wait for stragglers (default 5s).
	RoundTimeout time.Duration
	// ConnectTimeout bounds cluster formation (default 10s).
	ConnectTimeout time.Duration
	// Logf, when set, receives diagnostics about tolerated faults
	// (failed sends, reconnects, refreshes). Nil discards them.
	Logf func(format string, args ...any)
	// Obs, when set, receives the node's live metrics (per-link bytes,
	// gather waits, APE stage, round phase latencies) and JSONL
	// round-lifecycle events; serve them with ServeObservability. Nil
	// disables observation.
	Obs *Observer
	// Feed, when set, receives a snapshot of the node's parameters at
	// the end of every round — the publication hook the serving plane
	// hangs off. Serve from it locally with NewGateway, or expose it to
	// remote gateways by mounting ParamsHandler(feed) via
	// ObserveConfig.Params.
	Feed *ParamFeed
	// TraceRounds, when positive, enables distributed tracing: the node
	// records per-round phase spans and per-frame timestamps into a ring
	// of TraceRounds rounds, stamps a compact trace context onto every
	// outgoing frame, and — in elastic mode — pushes completed round
	// digests to the coordinator on heartbeats. Retrieve the tracer with
	// PeerNode.Tracer() and serve it with TraceHandler.
	TraceRounds int
}

// NewPeerNode builds a TCP edge server.
//
// In static mode (no CoordinatorAddr) the node takes its position from
// Topology/ID and uses the Metropolis weight row — or the precomputed
// WRow, validated against the topology. Call Connect with the neighbor
// addresses, then Run.
//
// In elastic mode (CoordinatorAddr set) the node binds its listener,
// joins through the coordinator, and configures itself entirely from the
// cluster's current epoch: id, optimized weight row, neighbors and their
// addresses. It connects to those neighbors before returning, so the
// caller proceeds straight to Run.
func NewPeerNode(cfg PeerConfig) (*PeerNode, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("snap: peer config requires a model")
	}
	if cfg.CoordinatorAddr != "" {
		return newElasticPeerNode(cfg)
	}
	if cfg.Topology == nil {
		return nil, fmt.Errorf("snap: peer config requires a topology")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Topology.N() {
		return nil, fmt.Errorf("snap: peer id %d out of range for %d-node topology", cfg.ID, cfg.Topology.N())
	}
	row := Vector(cfg.WRow)
	if row == nil {
		row = weights.Metropolis(cfg.Topology, 0).Row(cfg.ID)
	} else if err := validateWRow(row, cfg.Topology, cfg.ID); err != nil {
		return nil, err
	}
	data := cfg.Data
	if cfg.DataForID != nil {
		data = cfg.DataForID(cfg.ID)
	}
	return core.NewPeerNode(core.PeerNodeConfig{
		Engine: core.EngineConfig{
			ID:             cfg.ID,
			Model:          cfg.Model,
			Data:           data,
			Alpha:          cfg.Alpha,
			WRow:           row,
			Neighbors:      cfg.Topology.Neighbors(cfg.ID),
			BatchSize:      cfg.BatchSize,
			GradWorkers:    cfg.GradWorkers,
			Float32Wire:    cfg.Float32Wire,
			Policy:         cfg.Policy,
			APE:            cfg.APE,
			RefreshEvery:   cfg.RefreshEvery,
			RestartEvery:   cfg.RestartEvery,
			FullSendRound0: cfg.FullSendRound0,
			Init:           cfg.Model.InitParams(cfg.Seed),
		},
		ListenAddr:     cfg.ListenAddr,
		RoundTimeout:   cfg.RoundTimeout,
		ConnectTimeout: cfg.ConnectTimeout,
		Logf:           cfg.Logf,
		Obs:            cfg.Obs,
		Tracer:         newTracerFor(cfg, cfg.ID),
		Feed:           feedSink(cfg.Feed),
	})
}

// feedSink adapts the optional feed to core's sink interface without
// ever boxing a nil pointer into a non-nil interface.
func feedSink(f *ParamFeed) core.ParamSink {
	if f == nil {
		return nil
	}
	return f
}

// newTracerFor builds the node tracer requested by cfg.TraceRounds (nil
// when tracing is off). The node id is passed separately because elastic
// nodes only learn theirs from the coordinator.
func newTracerFor(cfg PeerConfig, id int) *trace.Tracer {
	if cfg.TraceRounds <= 0 {
		return nil
	}
	return trace.New(trace.Config{Node: id, Rounds: cfg.TraceRounds})
}

// validateWRow checks a user-supplied weight row against the topology:
// right length, row-stochastic, and supported only on the diagonal plus
// the node's neighbors (a nonzero weight for a non-neighbor would mix
// parameters the node never receives).
func validateWRow(row Vector, topo *Topology, id int) error {
	if len(row) != topo.N() {
		return fmt.Errorf("snap: weight row has %d entries for a %d-node topology", len(row), topo.N())
	}
	var sum float64
	for _, w := range row {
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("snap: weight row sums to %g, want 1", sum)
	}
	for j, w := range row {
		if w != 0 && j != id && !topo.HasEdge(id, j) {
			return fmt.Errorf("snap: weight row has nonzero entry %g for non-neighbor %d", w, j)
		}
	}
	return nil
}

// newElasticPeerNode implements the coordinator-managed join path.
func newElasticPeerNode(cfg PeerConfig) (*PeerNode, error) {
	listenAddr := cfg.ListenAddr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("snap: bind data-plane listener: %w", err)
	}
	advertise := cfg.Advertise
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	client, err := controlplane.Join(controlplane.ClientConfig{
		Coordinator: cfg.CoordinatorAddr,
		Advertise:   advertise,
		JoinWait:    cfg.JoinWait,
		Logf:        cfg.Logf,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	plan, err := client.Latest().PlanFor(client.ID())
	if err != nil {
		client.Close()
		ln.Close()
		return nil, err
	}
	client.ReportRound(plan.StartRound)
	client.ReportEpoch(plan.Epoch)
	data := cfg.Data
	if cfg.DataForID != nil {
		data = cfg.DataForID(client.ID())
	}
	pn, err := core.NewPeerNode(core.PeerNodeConfig{
		Engine: core.EngineConfig{
			ID:           client.ID(),
			Model:        cfg.Model,
			Data:         data,
			Alpha:        cfg.Alpha,
			WRow:         plan.WRow,
			Neighbors:    plan.Neighbors,
			BatchSize:    cfg.BatchSize,
			GradWorkers:  cfg.GradWorkers,
			Float32Wire:  cfg.Float32Wire,
			Policy:       cfg.Policy,
			APE:          cfg.APE,
			RefreshEvery: cfg.RefreshEvery,
			RestartEvery: cfg.RestartEvery,
			Init:         cfg.Model.InitParams(cfg.Seed),
		},
		Listener:       ln,
		Control:        client,
		Epoch:          plan.Epoch,
		StartRound:     plan.StartRound,
		RoundTimeout:   cfg.RoundTimeout,
		ConnectTimeout: cfg.ConnectTimeout,
		Logf:           cfg.Logf,
		Obs:            cfg.Obs,
		Tracer:         newTracerFor(cfg, client.ID()),
		Feed:           feedSink(cfg.Feed),
	})
	if err != nil {
		client.Close()
		ln.Close()
		return nil, err
	}
	// A node admitted mid-training holds the shared seed initialization
	// while the cluster's iterates have moved on; its first broadcast must
	// therefore be its complete parameter vector, whatever the policy.
	pn.Engine().RequestFullSend()
	if err := pn.Connect(plan.Addrs); err != nil {
		// Unreached neighbors keep reconnecting in the background; the
		// round loop treats them as stragglers meanwhile.
		if cfg.Logf != nil {
			cfg.Logf("node %d: connecting to epoch %d neighbors: %v (continuing)",
				client.ID(), plan.Epoch, err)
		}
	}
	return pn, nil
}
