module github.com/snapml/snap

go 1.22
