package snap

// End-to-end acceptance test for the elastic control plane: a TCP
// cluster founded through a coordinator trains for some rounds, a new
// node joins mid-run at an epoch boundary, the coordinator re-optimizes
// W for the grown topology, members restart EXTRA and keep training,
// and the final loss matches a static run of the same (N+1)-node
// problem. The test lives in the snap package (not snap_test) so it can
// use the internal spectral machinery to verify the re-optimized W
// against the Metropolis baseline.

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/weights"
)

func TestElasticClusterEndToEnd(t *testing.T) {
	const (
		founders = 4
		total    = 5
		// In-process rounds run in ~1ms while the heartbeats that feed the
		// coordinator's apply-boundary estimate tick every second, so the
		// join can land tens of rounds after its nominal boundary. The
		// horizon leaves plenty of joint rounds after even a late apply.
		horizon = 100
		alpha   = 0.1
		seed    = 7
	)

	rng := rand.New(rand.NewSource(42))
	data := SyntheticCredit(CreditConfig{Samples: 2000}, rng)
	parts, err := data.Partition(total, rng)
	if err != nil {
		t.Fatal(err)
	}

	coordReg := NewMetricsRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		MinMembers:   founders,
		AttachDegree: 2,
		ApplyMargin:  3,
		Bound:        BoundParams{Alpha: alpha},
		Logf:         t.Logf,
		Obs:          NewObserver(coordReg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Founder 0 carries the node-side observability checked at the end.
	nodeReg := NewMetricsRegistry()
	var eventBuf bytes.Buffer
	eventLog := NewEventLog(&eventBuf)

	newNode := func(withObs bool) (*PeerNode, error) {
		var observer *Observer
		if withObs {
			observer = NewObserver(nodeReg, eventLog)
		}
		return NewPeerNode(PeerConfig{
			Model:           NewLinearSVM(data.NumFeature),
			DataForID:       func(id int) *Dataset { return parts[id%total] },
			Alpha:           alpha,
			Policy:          SNAP,
			Seed:            seed,
			CoordinatorAddr: coord.Addr(),
			JoinWait:        30 * time.Second,
			RoundTimeout:    2 * time.Second,
			Logf:            t.Logf,
			Obs:             observer,
		})
	}

	var (
		mu    sync.Mutex
		nodes = make(map[int]*PeerNode, total)
		wg    sync.WaitGroup
		errs  = make([]error, total)
	)
	runNode := func(slot int, withObs bool) {
		defer wg.Done()
		node, err := newNode(withObs)
		if err != nil {
			errs[slot] = err
			return
		}
		mu.Lock()
		nodes[node.Engine().ID()] = node
		mu.Unlock()
		defer node.Close()
		_, errs[slot] = node.Run(horizon)
	}
	for i := 0; i < founders; i++ {
		wg.Add(1)
		go runNode(i, i == 0)
	}

	// Wait until the founding quorum is training, then join the fifth
	// node mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for nodeReg.Gauge(obs.MRound).Value() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("founders never progressed past round 5")
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Add(1)
	go runNode(founders, false)
	wg.Wait()

	for slot, err := range errs {
		if err != nil {
			t.Fatalf("node in slot %d: %v", slot, err)
		}
	}
	if len(nodes) != total {
		t.Fatalf("%d distinct node ids, want %d", len(nodes), total)
	}

	// Every member ends on epoch 2 (founding epoch + the join), and the
	// founders restarted EXTRA when they applied it.
	for id, node := range nodes {
		if node.Epoch() != 2 {
			t.Errorf("node %d finished on epoch %d, want 2", id, node.Epoch())
		}
		if id < founders && node.Engine().Restarts() < 1 {
			t.Errorf("founder %d never restarted EXTRA across the reconfiguration", id)
		}
	}

	// The cluster reached consensus across old and new members.
	ref := nodes[0].Engine().Params()
	for id, node := range nodes {
		if d := node.Engine().Params().Sub(ref).NormInf(); d > 0.1 {
			t.Errorf("node %d disagreement %v after %d rounds", id, d, horizon)
		}
	}

	// The final epoch describes all five members, and its weight matrix
	// is at least as good as Metropolis on the same topology under the
	// paper's convergence bound (eq. 17) — the coordinator's central
	// re-optimization at work.
	ep := coord.CurrentEpoch()
	if ep == nil || ep.ID != 2 || len(ep.Members) != total {
		t.Fatalf("final epoch = %+v, want epoch 2 with %d members", ep, total)
	}
	pos := make(map[int]int, total)
	for i, m := range ep.Members {
		pos[m.ID] = i
	}
	topo := graph.New(total)
	w := linalg.NewMatrix(total, total)
	for i, m := range ep.Members {
		if len(m.Row) != total {
			t.Fatalf("member %d weight row has %d entries, want %d", m.ID, len(m.Row), total)
		}
		for j, v := range m.Row {
			w.Set(i, j, v)
		}
		for _, p := range m.Peers {
			topo.AddEdge(i, pos[p])
		}
	}
	spec, err := linalg.AnalyzeSpectrum(w)
	if err != nil {
		t.Fatalf("analyzing epoch weight matrix: %v", err)
	}
	if math.Abs(spec.LambdaBarMax-ep.LambdaBarMax) > 1e-6 {
		t.Errorf("epoch reports lambda_bar_max %v, matrix has %v", ep.LambdaBarMax, spec.LambdaBarMax)
	}
	metroSpec, err := linalg.AnalyzeSpectrum(weights.Metropolis(topo, 0))
	if err != nil {
		t.Fatal(err)
	}
	bound := weights.BoundParams{Alpha: alpha}
	if got, floor := weights.DeltaBound(spec, bound), weights.DeltaBound(metroSpec, bound); got < floor-1e-9 {
		t.Errorf("epoch W bound %v worse than Metropolis %v", got, floor)
	}

	// The elastic run's final aggregate loss matches a static 5-node
	// simulation of the same topology, partitions, and horizon.
	var elasticLoss float64
	for _, m := range ep.Members {
		elasticLoss += nodes[m.ID].Engine().LocalLoss()
	}
	staticParts := make([]*Dataset, total)
	for i, m := range ep.Members {
		staticParts[i] = parts[m.ID%total]
	}
	static, err := Train(Config{
		Topology:      topo,
		Model:         NewLinearSVM(data.NumFeature),
		Partitions:    staticParts,
		Alpha:         alpha,
		Policy:        SNAP,
		MaxIterations: horizon,
		Seed:          seed,
		EvalEvery:     horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(elasticLoss - static.FinalLoss); diff > 0.1*static.FinalLoss+0.02 {
		t.Errorf("elastic aggregate loss %v vs static %v (diff %v)", elasticLoss, static.FinalLoss, diff)
	}

	// Observability: the node-side registry exposes the epoch gauge and
	// reconfiguration counter, the event log recorded the epoch switch,
	// and the coordinator's registry tracked membership and broadcasts.
	snapMetrics := nodeReg.Snapshot()
	if got, _ := snapMetrics[obs.MEpoch].(float64); got != 2 {
		t.Errorf("node snapshot %s = %v, want 2", obs.MEpoch, snapMetrics[obs.MEpoch])
	}
	if got, _ := snapMetrics[obs.MEpochsApplied].(int64); got < 1 {
		t.Errorf("node snapshot %s = %v, want >= 1", obs.MEpochsApplied, snapMetrics[obs.MEpochsApplied])
	}
	if !strings.Contains(eventBuf.String(), obs.EvEpochApplied) {
		t.Errorf("event log has no %q event", obs.EvEpochApplied)
	}
	if got := coordReg.Gauge(obs.MMembers).Value(); got != total {
		t.Errorf("coordinator %s = %v, want %d", obs.MMembers, got, total)
	}
	if got := coordReg.Counter(obs.MEpochsBroadcast).Value(); got != 2 {
		t.Errorf("coordinator %s = %v, want 2", obs.MEpochsBroadcast, got)
	}
}
