package snap_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap"
)

// facadeWorkload builds a small shared workload through the public API
// only.
func facadeWorkload(t *testing.T, servers int) (snap.Model, []*snap.Dataset, *snap.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(100))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 1500}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(servers, rng)
	if err != nil {
		t.Fatal(err)
	}
	return snap.NewLinearSVM(data.NumFeature), parts, test
}

func TestTopologyConstructors(t *testing.T) {
	if g := snap.CompleteTopology(4); g.NumEdges() != 6 {
		t.Errorf("K4 edges = %d", g.NumEdges())
	}
	if g := snap.RingTopology(5); g.NumEdges() != 5 {
		t.Errorf("C5 edges = %d", g.NumEdges())
	}
	g := snap.RandomTopology(30, 3, 7)
	if !g.IsConnected() {
		t.Error("random topology disconnected")
	}
	// Deterministic per seed.
	h := snap.RandomTopology(30, 3, 7)
	if g.NumEdges() != h.NumEdges() {
		t.Error("RandomTopology not deterministic")
	}
}

func TestTrainThroughFacade(t *testing.T) {
	model, parts, test := facadeWorkload(t, 4)
	res, err := snap.Train(snap.Config{
		Topology:      snap.CompleteTopology(4),
		Model:         model,
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        snap.SNAP,
		MaxIterations: 200,
		Convergence:   snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.02},
		Seed:          1,
		EvalEvery:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("facade SNAP run did not converge in %d iterations", res.Iterations)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("accuracy = %v", res.FinalAccuracy)
	}
	if res.TotalCost <= 0 {
		t.Error("no communication recorded")
	}
}

func TestTrainValidatesThroughFacade(t *testing.T) {
	model, parts, _ := facadeWorkload(t, 4)
	if _, err := snap.Train(snap.Config{Model: model, Partitions: parts, Alpha: 0.1}); err == nil {
		t.Error("missing topology accepted")
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	model, parts, test := facadeWorkload(t, 4)
	cfg := snap.BaselineConfig{
		Topology: snap.CompleteTopology(4), Model: model, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 200, EvalEvery: 50, Seed: 2,
		Convergence: snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3},
	}
	central, err := snap.TrainCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := snap.TrainPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ternCfg := cfg
	ternCfg.BatchSize = 2
	tern, err := snap.TrainTernGrad(ternCfg)
	if err != nil {
		t.Fatal(err)
	}
	if central.Scheme != "centralized" || ps.Scheme != "ps" || tern.Scheme != "terngrad" {
		t.Errorf("schemes = %q %q %q", central.Scheme, ps.Scheme, tern.Scheme)
	}
	if math.Abs(central.FinalAccuracy-ps.FinalAccuracy) > 0.03 {
		t.Errorf("PS accuracy %v far from centralized %v", ps.FinalAccuracy, central.FinalAccuracy)
	}
	if ps.TotalCost <= 0 || tern.TotalCost <= 0 {
		t.Error("baseline costs missing")
	}
}

func TestPeerNodesThroughFacade(t *testing.T) {
	const servers = 3
	model, parts, _ := facadeWorkload(t, servers)
	topo := snap.CompleteTopology(servers)

	nodes := make([]*snap.PeerNode, servers)
	addrs := make(map[int]string, servers)
	for i := range nodes {
		node, err := snap.NewPeerNode(snap.PeerConfig{
			ID: i, Topology: topo, Model: model, Data: parts[i],
			Alpha: 0.1, Policy: snap.SNAP0, Seed: 3,
			ListenAddr: "127.0.0.1:0", RoundTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		defer node.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, servers)
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *snap.PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range topo.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			if err := node.Connect(neighbors); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = node.Run(20)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Nodes approached consensus.
	ref := nodes[0].Engine().Params()
	for i, node := range nodes[1:] {
		if d := node.Engine().Params().Sub(ref).NormInf(); d > 0.1 {
			t.Errorf("node %d disagreement %v after 20 rounds", i+1, d)
		}
	}
}

func TestPeerConfigValidation(t *testing.T) {
	model, parts, _ := facadeWorkload(t, 3)
	topo := snap.CompleteTopology(3)
	if _, err := snap.NewPeerNode(snap.PeerConfig{ID: 0, Model: model, Data: parts[0], Alpha: 0.1, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := snap.NewPeerNode(snap.PeerConfig{ID: 9, Topology: topo, Model: model, Data: parts[0], Alpha: 0.1, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := snap.NewPeerNode(snap.PeerConfig{ID: 0, Topology: topo, Data: parts[0], Alpha: 0.1, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("missing model accepted")
	}
}

// TestOptimizedWRowsThroughFacade distributes centrally optimized
// weight rows to a static TCP cluster via PeerConfig.WRow — the
// coordinator-less path to the paper's Section IV-B optimization — and
// checks the cluster still reaches consensus.
func TestOptimizedWRowsThroughFacade(t *testing.T) {
	const servers = 4
	model, parts, _ := facadeWorkload(t, servers)
	topo := snap.RingTopology(servers)

	rows, err := snap.OptimizeWeightRows(topo, snap.BoundParams{Alpha: 0.1}, snap.WeightOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != servers {
		t.Fatalf("%d rows for %d nodes", len(rows), servers)
	}
	for i, row := range rows {
		var sum float64
		for j, w := range row {
			sum += w
			if w != 0 && j != i && !topo.HasEdge(i, j) {
				t.Errorf("row %d has nonzero weight %g for non-neighbor %d", i, w, j)
			}
			if math.Abs(w-rows[j][i]) > 1e-9 {
				t.Errorf("rows not symmetric at (%d,%d): %g vs %g", i, j, w, rows[j][i])
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}

	nodes := make([]*snap.PeerNode, servers)
	addrs := make(map[int]string, servers)
	for i := range nodes {
		node, err := snap.NewPeerNode(snap.PeerConfig{
			ID: i, Topology: topo, WRow: rows[i], Model: model, Data: parts[i],
			Alpha: 0.1, Policy: snap.SNAP, Seed: 11,
			ListenAddr: "127.0.0.1:0", RoundTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		defer node.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, servers)
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *snap.PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range topo.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			if err := node.Connect(neighbors); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = node.Run(25)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	ref := nodes[0].Engine().Params()
	for i, node := range nodes[1:] {
		if d := node.Engine().Params().Sub(ref).NormInf(); d > 0.1 {
			t.Errorf("node %d disagreement %v with optimized rows", i+1, d)
		}
	}
}

func TestWRowValidation(t *testing.T) {
	model, parts, _ := facadeWorkload(t, 4)
	topo := snap.RingTopology(4) // node 0's neighbors: 1 and 3; 2 is not one
	base := snap.PeerConfig{
		ID: 0, Topology: topo, Model: model, Data: parts[0],
		Alpha: 0.1, ListenAddr: "127.0.0.1:0",
	}
	cases := []struct {
		name string
		row  []float64
	}{
		{"wrongLength", []float64{0.5, 0.5}},
		{"notStochastic", []float64{0.5, 0.2, 0, 0.2}},
		{"nonNeighborSupport", []float64{0.4, 0.2, 0.2, 0.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.WRow = tc.row
			if _, err := snap.NewPeerNode(cfg); err == nil {
				t.Errorf("weight row %v accepted", tc.row)
			}
		})
	}
	cfg := base
	cfg.WRow = []float64{0.5, 0.25, 0, 0.25}
	node, err := snap.NewPeerNode(cfg)
	if err != nil {
		t.Fatalf("valid weight row rejected: %v", err)
	}
	node.Close()
}

func TestStragglerTrainingThroughFacade(t *testing.T) {
	model, parts, test := facadeWorkload(t, 5)
	res, err := snap.Train(snap.Config{
		Topology:      snap.RandomTopology(5, 3, 9),
		Model:         model,
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        snap.SNAP,
		FailureRate:   0.05,
		MaxIterations: 300,
		Convergence:   snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.05},
		Seed:          4,
		EvalEvery:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.78 {
		t.Errorf("straggler accuracy = %v", res.FinalAccuracy)
	}
}
