#!/usr/bin/env bash
# Blocking benchmark guard for the round hot path (CI).
#
# Two kinds of gate, read against the committed BENCH_PR10.json:
#
#  1. Machine-independent ratio: BenchmarkExtraRoundDelayed/pipelined
#     must beat /sequential by at least MIN_OVERLAP_GAIN on the same
#     box in the same run. The recorded gain is ~1.98x (DESIGN.md §14);
#     a drop below the threshold means the pipeline stopped overlapping
#     compute with the gather window.
#
#  2. Absolute envelope: ns/op for the guarded benchmarks must stay
#     within NS_SLACK x the committed baseline, and BenchmarkExtraRound
#     allocs/op within ALLOC_SLACK_OPS of baseline. The ns/op envelope
#     is generous because CI machines vary; the alloc gate is tight
#     because allocation counts are deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR10.json
MIN_OVERLAP_GAIN=1.20
NS_SLACK=2.5
ALLOC_SLACK_OPS=6

fail=0

# ---- overlap benchmark -------------------------------------------------
echo "=== BenchmarkExtraRoundDelayed (30x) ==="
delayed=$(go test -run=NONE -bench 'BenchmarkExtraRoundDelayed' -benchtime 30x ./internal/core/)
echo "$delayed"
seq_ns=$(echo "$delayed" | awk '$1 ~ /ExtraRoundDelayed\/sequential/ {print $3; exit}')
pip_ns=$(echo "$delayed" | awk '$1 ~ /ExtraRoundDelayed\/pipelined/ {print $3; exit}')
if [ -z "$seq_ns" ] || [ -z "$pip_ns" ]; then
    echo "FAIL: could not parse BenchmarkExtraRoundDelayed output" >&2
    exit 1
fi

gain=$(awk -v s="$seq_ns" -v p="$pip_ns" 'BEGIN {printf "%.3f", s / p}')
echo "overlap gain: ${gain}x (sequential ${seq_ns} ns/op / pipelined ${pip_ns} ns/op)"
if awk -v g="$gain" -v min="$MIN_OVERLAP_GAIN" 'BEGIN {exit !(g < min)}'; then
    echo "FAIL: overlap gain ${gain}x < required ${MIN_OVERLAP_GAIN}x" >&2
    fail=1
fi

pip_base=$(jq -r '.benchmarks[] | select(.name == "BenchmarkExtraRoundDelayed/pipelined") | .ns_per_op' "$BASELINE")
if awk -v v="$pip_ns" -v b="$pip_base" -v s="$NS_SLACK" 'BEGIN {exit !(v > b * s)}'; then
    echo "FAIL: pipelined ${pip_ns} ns/op > ${NS_SLACK}x committed baseline ${pip_base}" >&2
    fail=1
fi

# ---- simulated-round benchmark ----------------------------------------
echo "=== BenchmarkExtraRound (200x) ==="
round=$(go test -run=NONE -bench 'BenchmarkExtraRound$' -benchtime 200x -benchmem .)
echo "$round"
round_ns=$(echo "$round" | awk '$1 ~ /^BenchmarkExtraRound/ {print $3; exit}')
round_allocs=$(echo "$round" | awk '$1 ~ /^BenchmarkExtraRound/ {for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i; exit}')
round_ns_base=$(jq -r '.benchmarks[] | select(.name == "BenchmarkExtraRound") | .ns_per_op' "$BASELINE")
round_allocs_base=$(jq -r '.benchmarks[] | select(.name == "BenchmarkExtraRound") | .allocs_per_op' "$BASELINE")
if [ -z "$round_ns" ] || [ -z "$round_allocs" ]; then
    echo "FAIL: could not parse BenchmarkExtraRound output" >&2
    exit 1
fi
if awk -v v="$round_ns" -v b="$round_ns_base" -v s="$NS_SLACK" 'BEGIN {exit !(v > b * s)}'; then
    echo "FAIL: BenchmarkExtraRound ${round_ns} ns/op > ${NS_SLACK}x committed baseline ${round_ns_base}" >&2
    fail=1
fi
if [ "$round_allocs" -gt $((round_allocs_base + ALLOC_SLACK_OPS)) ]; then
    echo "FAIL: BenchmarkExtraRound ${round_allocs} allocs/op > baseline ${round_allocs_base} + ${ALLOC_SLACK_OPS}" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "bench guard: FAILED" >&2
    exit 1
fi
echo "bench guard: OK (gain ${gain}x, round ${round_allocs} allocs/op)"
