package snap_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/snapml/snap"
)

// ExampleTrain shows the minimal decentralized training loop: four edge
// servers, disjoint data shards, selective parameter exchange.
func ExampleTrain() {
	rng := rand.New(rand.NewSource(2))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 2000}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(4, rng)
	if err != nil {
		panic(err)
	}

	res, err := snap.Train(snap.Config{
		Topology:      snap.CompleteTopology(4),
		Model:         snap.NewLinearSVM(data.NumFeature),
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        snap.SNAP,
		MaxIterations: 200,
		Convergence:   snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.02},
		Seed:          1,
		EvalEvery:     50,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("learned something:", res.FinalAccuracy > 0.8)
	fmt.Println("exchanged bytes:", res.TotalCost > 0)
	// Output:
	// converged: true
	// learned something: true
	// exchanged bytes: true
}

// ExampleSaveParams persists a trained model and reloads it for inference.
func ExampleSaveParams() {
	model := snap.NewLinearSVM(8)
	params := model.InitParams(7)

	var buf bytes.Buffer
	if err := snap.SaveParams(&buf, params); err != nil {
		panic(err)
	}
	restored, err := snap.LoadParams(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("identical:", restored.Equal(params, 0))
	// Output:
	// identical: true
}

// ExampleRandomTopology shows the topology helpers.
func ExampleRandomTopology() {
	g := snap.RandomTopology(10, 3, 42)
	fmt.Println("connected:", g.IsConnected())
	fmt.Println("servers:", g.N())
	// Output:
	// connected: true
	// servers: 10
}
