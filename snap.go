// Package snap is a communication-efficient decentralized machine-learning
// framework for edge computing, reproducing "SNAP: A Communication
// Efficient Distributed Machine Learning Framework for Edge Computing"
// (Zhao et al., ICDCS 2020).
//
// Every edge server holds a full model copy, trains on its local data, and
// each round exchanges *selected* parameters with its topology neighbors
// only — no parameter server. Three mechanisms make this cheap and exact:
//
//   - the EXTRA consensus iteration, which provably reaches the same
//     optimum as centralized training on the pooled data;
//   - spectral optimization of the mixing weight matrix over the network
//     topology, which speeds convergence;
//   - Accumulated-Parameter-Error (APE) thresholding, which withholds
//     parameters whose change since they were last sent is too small to
//     matter, with a certified bound on the resulting error.
//
// # Quick start
//
//	topo := snap.RandomTopology(8, 3, 1)
//	data := snap.SyntheticCredit(snap.CreditConfig{Samples: 8000}, rand.New(rand.NewSource(2)))
//	train, test := data.Split(0.85, rand.New(rand.NewSource(3)))
//	parts, _ := train.Partition(8, rand.New(rand.NewSource(4)))
//	res, err := snap.Train(snap.Config{
//		Topology:   topo,
//		Model:      snap.NewLinearSVM(24),
//		Partitions: parts,
//		Test:       test,
//		Alpha:      0.1,
//	})
//
// The package also exposes the paper's baselines (Centralized, PS,
// TernGrad) for comparison, a real TCP peer mode for multi-process
// deployments, and the full experiment harness that regenerates every
// figure of the paper's evaluation (see cmd/snapsim).
package snap

import (
	"math/rand"

	"github.com/snapml/snap/internal/baseline"
	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

// Re-exported fundamental types. These are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// Model is a differentiable learner over a flat parameter vector.
	Model = model.Model
	// Dataset is an in-memory labeled sample collection.
	Dataset = dataset.Dataset
	// Sample is one labeled example.
	Sample = dataset.Sample
	// CreditConfig parameterizes the synthetic credit-default generator.
	CreditConfig = dataset.CreditConfig
	// DigitsConfig parameterizes the synthetic MNIST-like generator.
	DigitsConfig = dataset.DigitsConfig
	// Topology is the edge-server neighbor graph.
	Topology = graph.Graph
	// Result summarizes a training run.
	Result = core.Result
	// SendPolicy selects SNAP / SNAP-0 / SNO transmission.
	SendPolicy = core.SendPolicy
	// APEConfig tunes the Algorithm-1 threshold schedule.
	APEConfig = core.APEConfig
	// ConvergenceDetector is the stopping rule for training runs.
	ConvergenceDetector = metrics.ConvergenceDetector
	// Trace is a per-iteration training history.
	Trace = metrics.Trace
	// IterationStat is one row of a Trace.
	IterationStat = metrics.IterationStat
	// WeightOptions tunes the weight-matrix optimizer.
	WeightOptions = weights.Options
	// Vector is a flat parameter vector (model parameters, gradients).
	Vector = linalg.Vector
)

// Transmission policies (paper §V terminology).
const (
	// SNAP withholds parameters below the APE threshold (the full scheme).
	SNAP = core.SendSelected
	// SNAP0 sends every changed parameter (zero APE threshold).
	SNAP0 = core.SendChanged
	// SNO sends the full parameter vector every round
	// (select-neighbors-only).
	SNO = core.SendAll
)

// Model constructors.
var (
	// NewLinearSVM returns the paper's d-parameter squared-hinge SVM.
	NewLinearSVM = model.NewLinearSVM
	// NewLogisticRegression returns an L2-regularized logistic model.
	NewLogisticRegression = model.NewLogisticRegression
	// NewMLP returns the paper's 3-layer perceptron (784-30-10 testbed
	// model when called as NewMLP(784, 30, 10)).
	NewMLP = model.NewMLP
	// NewSoftmaxRegression returns a convex multiclass linear classifier.
	NewSoftmaxRegression = model.NewSoftmaxRegression
	// Accuracy evaluates a model's accuracy over a dataset.
	Accuracy = model.Accuracy
)

// Synthetic dataset generators (offline stand-ins for MNIST and the UCI
// credit-default corpus; see DESIGN.md §2).
var (
	SyntheticCredit = dataset.SyntheticCredit
	SyntheticDigits = dataset.SyntheticDigits
)

// Checkpointing: persist and reload a converged model's flat parameter
// vector (versioned, CRC-protected binary format).
var (
	SaveParams = model.SaveParams
	LoadParams = model.LoadParams
)

// RandomTopology generates a connected random edge-server graph with the
// target average node degree, deterministically from seed.
func RandomTopology(n int, avgDegree float64, seed int64) *Topology {
	return graph.RandomConnected(n, avgDegree, rand.New(rand.NewSource(seed)))
}

// CompleteTopology returns the fully connected n-server graph (the
// paper's 3-server testbed uses CompleteTopology(3)).
func CompleteTopology(n int) *Topology { return graph.Complete(n) }

// RingTopology returns the n-server ring.
func RingTopology(n int) *Topology { return graph.Ring(n) }

// SmallWorldTopology returns a connected Watts-Strogatz small-world graph
// (k nearest lattice neighbors, rewiring probability beta) — the
// high-clustering, short-diameter regime typical of real edge
// deployments.
func SmallWorldTopology(n, k int, beta float64, seed int64) *Topology {
	return graph.SmallWorld(n, k, beta, rand.New(rand.NewSource(seed)))
}

// ScaleFreeTopology returns a connected Barabási-Albert
// preferential-attachment graph (m edges per new vertex): a few highly
// connected aggregation servers and many leaves.
func ScaleFreeTopology(n, m int, seed int64) *Topology {
	return graph.ScaleFree(n, m, rand.New(rand.NewSource(seed)))
}

// Config configures a decentralized SNAP training run. The zero values of
// optional fields select paper defaults.
type Config struct {
	// Topology is the neighbor graph (required, connected).
	Topology *Topology
	// Model is the shared architecture (required).
	Model Model
	// Partitions holds each server's local data (required,
	// len == Topology.N()).
	Partitions []*Dataset
	// Test enables accuracy evaluation (optional).
	Test *Dataset
	// Alpha is the EXTRA step size (required, positive).
	Alpha float64
	// Policy selects SNAP (default), SNAP0 or SNO.
	Policy SendPolicy
	// APE tunes Algorithm 1 (optional).
	APE APEConfig
	// OptimizeWeights enables the spectral weight-matrix optimization
	// (paper §IV-B). Default off; the experiment harness turns it on.
	OptimizeWeights bool
	// WeightOpt tunes the optimizer.
	WeightOpt WeightOptions
	// BatchSize limits per-iteration gradients (0 = full batch).
	BatchSize int
	// GradWorkers caps the goroutines each node uses for its gradient
	// (≤1 = serial). Any value produces bitwise-identical results; this
	// only trades wall-clock time for CPU on large batches.
	GradWorkers int
	// MaxIterations caps the run (default 500).
	MaxIterations int
	// Convergence sets the stopping rule.
	Convergence ConvergenceDetector
	// EvalEvery sets the accuracy evaluation period (default 1).
	EvalEvery int
	// Seed makes the run reproducible.
	Seed int64
	// PerNodeInit gives every server an independent random initialization
	// (with a full round-0 exchange), as in an uncoordinated deployment.
	// Default: all servers share the Seed-derived initialization.
	PerNodeInit bool
	// Float32Wire transmits parameter values as float32, halving value
	// bytes (an extension beyond the paper; rounding ~1e-7 relative).
	Float32Wire bool
	// FailureRate injects per-round link failures (stragglers). Periodic
	// full refresh and recursion restarts are enabled automatically to
	// keep the iteration exact under loss.
	FailureRate float64
	// Obs, when set, streams live metrics and round events from the
	// simulated cluster: engine series are labeled node="<id>", phase
	// histograms aggregate across nodes. See NewObserver.
	Obs *Observer
}

// Train runs decentralized SNAP training over a simulated network and
// returns the result.
func Train(cfg Config) (*Result, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Topology:        cfg.Topology,
		Model:           cfg.Model,
		Partitions:      cfg.Partitions,
		Test:            cfg.Test,
		Alpha:           cfg.Alpha,
		Policy:          cfg.Policy,
		APE:             cfg.APE,
		OptimizeWeights: cfg.OptimizeWeights,
		WeightOpt:       cfg.WeightOpt,
		BatchSize:       cfg.BatchSize,
		GradWorkers:     cfg.GradWorkers,
		MaxIterations:   cfg.MaxIterations,
		Convergence:     cfg.Convergence,
		EvalEvery:       cfg.EvalEvery,
		Seed:            cfg.Seed,
		PerNodeInit:     cfg.PerNodeInit,
		Float32Wire:     cfg.Float32Wire,
		FailureRate:     cfg.FailureRate,
		Obs:             cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return cluster.Run()
}

// BaselineConfig configures the paper's comparison schemes.
type BaselineConfig struct {
	// Topology is required for PS and TernGrad (ignored by Centralized).
	Topology *Topology
	// Model, Partitions, Alpha as in Config.
	Model      Model
	Partitions []*Dataset
	Test       *Dataset
	Alpha      float64
	// BatchSize limits per-worker gradients for PS/TernGrad (0 = full).
	BatchSize     int
	MaxIterations int
	Convergence   ConvergenceDetector
	EvalEvery     int
	Seed          int64
}

// TrainCentralized runs the pooled-data yardstick baseline.
func TrainCentralized(cfg BaselineConfig) (*Result, error) {
	return baseline.RunCentralized(baseline.CentralizedConfig{
		Model:         cfg.Model,
		Partitions:    cfg.Partitions,
		Test:          cfg.Test,
		Alpha:         cfg.Alpha,
		MaxIterations: cfg.MaxIterations,
		Convergence:   cfg.Convergence,
		Seed:          cfg.Seed,
	})
}

// TrainPS runs the parameter-server baseline over cfg.Topology.
func TrainPS(cfg BaselineConfig) (*Result, error) {
	return baseline.RunPS(baseline.PSConfig{
		Topology:      cfg.Topology,
		Model:         cfg.Model,
		Partitions:    cfg.Partitions,
		Test:          cfg.Test,
		Alpha:         cfg.Alpha,
		BatchSize:     cfg.BatchSize,
		MaxIterations: cfg.MaxIterations,
		Convergence:   cfg.Convergence,
		EvalEvery:     cfg.EvalEvery,
		Seed:          cfg.Seed,
	})
}

// TrainDGD runs classic decentralized gradient descent over cfg.Topology
// — the inexact peer-to-peer baseline EXTRA (and therefore SNAP)
// improves on: with a constant step size DGD's nodes never fully agree.
func TrainDGD(cfg BaselineConfig) (*Result, error) {
	return baseline.RunDGD(baseline.DGDConfig{
		Topology:      cfg.Topology,
		Model:         cfg.Model,
		Partitions:    cfg.Partitions,
		Test:          cfg.Test,
		Alpha:         cfg.Alpha,
		MaxIterations: cfg.MaxIterations,
		Convergence:   cfg.Convergence,
		EvalEvery:     cfg.EvalEvery,
		Seed:          cfg.Seed,
	})
}

// TrainGossip runs randomized pairwise gossip SGD over cfg.Topology:
// each round a matching of random edges activates, the endpoints average
// their parameters, and every node takes a local gradient step.
func TrainGossip(cfg BaselineConfig) (*Result, error) {
	return baseline.RunGossip(baseline.GossipConfig{
		Topology:      cfg.Topology,
		Model:         cfg.Model,
		Partitions:    cfg.Partitions,
		Test:          cfg.Test,
		Alpha:         cfg.Alpha,
		MaxIterations: cfg.MaxIterations,
		Convergence:   cfg.Convergence,
		EvalEvery:     cfg.EvalEvery,
		Seed:          cfg.Seed,
	})
}

// TrainTernGrad runs the TernGrad baseline (PS with 2-bit ternary
// worker→server gradients) over cfg.Topology.
func TrainTernGrad(cfg BaselineConfig) (*Result, error) {
	return baseline.RunPS(baseline.PSConfig{
		Topology:      cfg.Topology,
		Model:         cfg.Model,
		Partitions:    cfg.Partitions,
		Test:          cfg.Test,
		Alpha:         cfg.Alpha,
		BatchSize:     cfg.BatchSize,
		MaxIterations: cfg.MaxIterations,
		Convergence:   cfg.Convergence,
		EvalEvery:     cfg.EvalEvery,
		Seed:          cfg.Seed,
		Ternary:       true,
	})
}
