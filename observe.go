package snap

import (
	"io"
	"net/http"

	"github.com/snapml/snap/internal/obs"
)

// Observability: every training path (simulated Cluster and TCP PeerNode)
// can stream metrics into a MetricsRegistry and round-lifecycle events
// into a JSONL EventLog, and a node can serve both live over HTTP — the
// measurement substrate for the paper's quantitative claims
// (communication cost, APE schedule, straggler waits).
//
// Typical testbed wiring:
//
//	reg := snap.NewMetricsRegistry()
//	log := snap.NewEventLog(eventsFile)
//	node, _ := snap.NewPeerNode(snap.PeerConfig{ ..., Obs: snap.NewObserver(reg, log)})
//	srv, addr, _ := snap.ServeObservability(":9090", id, reg, log)
//	defer srv.Close()
//
// then scrape http://addr/metrics (Prometheus text), GET /snapshot
// (JSON), or profile via /debug/pprof while training runs.
type (
	// MetricsRegistry holds named counters, gauges and histograms; all
	// operations are safe for concurrent use.
	MetricsRegistry = obs.Registry
	// EventLog writes structured JSONL round-lifecycle events (round
	// start/end, broadcast, gather waits, APE stage changes, link
	// up/down/reconnect, refreshes, tolerated faults).
	EventLog = obs.EventLog
	// Observer bundles a registry and event log for config structs.
	Observer = obs.Observer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventLog returns an event log writing JSON lines to w (a file,
// os.Stderr, …). Writes are serialized; errors are counted, not fatal.
func NewEventLog(w io.Writer) *EventLog { return obs.NewEventLog(w) }

// NewObserver bundles a registry and event log; either may be nil.
func NewObserver(reg *MetricsRegistry, log *EventLog) *Observer {
	return &Observer{Reg: reg, Log: log}
}

// ObserveConfig configures the observability HTTP endpoint: which node
// it describes, what it exposes, and whether the pprof profiling
// handlers are mounted.
type ObserveConfig = obs.ServeConfig

// ObservabilityHandler serves /metrics (Prometheus text exposition),
// /snapshot (JSON), and /debug/pprof/* for one node.
//
// pprof is always mounted here for backward compatibility; on a network
// anyone can reach, prefer ObservabilityHandlerWith with PprofEnabled
// false — profiles leak memory contents and the profile endpoints can be
// driven hard enough to degrade training.
func ObservabilityHandler(node int, reg *MetricsRegistry, log *EventLog) http.Handler {
	return obs.Handler(node, reg, log)
}

// ObservabilityHandlerWith builds the endpoint from an ObserveConfig:
// /metrics and /snapshot always, /trace when cfg.Trace is set (use
// TraceHandler or ClusterTraceHandler), /debug/pprof/* only when
// cfg.PprofEnabled.
func ObservabilityHandlerWith(cfg ObserveConfig) http.Handler {
	return obs.NewHandler(cfg)
}

// ServeObservability starts ObservabilityHandler on addr (":0" for an
// ephemeral port) in the background, returning the server and the bound
// address. Close the server when done. pprof is mounted; see
// ServeObservabilityWith to opt out.
func ServeObservability(addr string, node int, reg *MetricsRegistry, log *EventLog) (*http.Server, string, error) {
	return obs.Serve(addr, node, reg, log)
}

// ServeObservabilityWith starts ObservabilityHandlerWith on addr in the
// background, returning the server and the bound address.
func ServeObservabilityWith(addr string, cfg ObserveConfig) (*http.Server, string, error) {
	return obs.ServeWith(addr, cfg)
}
