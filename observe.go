package snap

import (
	"io"
	"net/http"

	"github.com/snapml/snap/internal/obs"
)

// Observability: every training path (simulated Cluster and TCP PeerNode)
// can stream metrics into a MetricsRegistry and round-lifecycle events
// into a JSONL EventLog, and a node can serve both live over HTTP — the
// measurement substrate for the paper's quantitative claims
// (communication cost, APE schedule, straggler waits).
//
// Typical testbed wiring:
//
//	reg := snap.NewMetricsRegistry()
//	log := snap.NewEventLog(eventsFile)
//	node, _ := snap.NewPeerNode(snap.PeerConfig{ ..., Obs: snap.NewObserver(reg, log)})
//	srv, addr, _ := snap.ServeObservability(":9090", id, reg, log)
//	defer srv.Close()
//
// then scrape http://addr/metrics (Prometheus text), GET /snapshot
// (JSON), or profile via /debug/pprof while training runs.
type (
	// MetricsRegistry holds named counters, gauges and histograms; all
	// operations are safe for concurrent use.
	MetricsRegistry = obs.Registry
	// EventLog writes structured JSONL round-lifecycle events (round
	// start/end, broadcast, gather waits, APE stage changes, link
	// up/down/reconnect, refreshes, tolerated faults).
	EventLog = obs.EventLog
	// Observer bundles a registry and event log for config structs.
	Observer = obs.Observer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventLog returns an event log writing JSON lines to w (a file,
// os.Stderr, …). Writes are serialized; errors are counted, not fatal.
func NewEventLog(w io.Writer) *EventLog { return obs.NewEventLog(w) }

// NewObserver bundles a registry and event log; either may be nil.
func NewObserver(reg *MetricsRegistry, log *EventLog) *Observer {
	return &Observer{Reg: reg, Log: log}
}

// ObservabilityHandler serves /metrics (Prometheus text exposition),
// /snapshot (JSON), and /debug/pprof/* for one node.
func ObservabilityHandler(node int, reg *MetricsRegistry, log *EventLog) http.Handler {
	return obs.Handler(node, reg, log)
}

// ServeObservability starts ObservabilityHandler on addr (":0" for an
// ephemeral port) in the background, returning the server and the bound
// address. Close the server when done.
func ServeObservability(addr string, node int, reg *MetricsRegistry, log *EventLog) (*http.Server, string, error) {
	return obs.Serve(addr, node, reg, log)
}
