package snap

import (
	"net/http"

	"github.com/snapml/snap/internal/trace"
)

// Distributed tracing: every node can record a per-round trace (phase
// spans, per-frame send/receive timestamps carried on the wire, byte
// accounting versus a hypothetical full send), and a coordinator — or any
// process holding all the digests — can merge them into a cluster-wide
// view with per-round stragglers, critical paths, clock-offset estimates,
// and cumulative communication savings. See DESIGN.md §12 and the
// "Tracing a cluster" walkthrough in README.md.
type (
	// Tracer records one node's round traces into a fixed-size ring with
	// zero steady-state allocations. All methods are safe on a nil
	// receiver, so tracing can be compiled in unconditionally and enabled
	// by wiring.
	Tracer = trace.Tracer
	// RoundDigest is one node's completed round: phases, sub-spans,
	// received frames with the senders' wire timestamps, and byte
	// accounting.
	RoundDigest = trace.RoundDigest
	// TraceAggregator merges round digests from many nodes into cluster
	// rounds and estimates per-node clock offsets from NTP-style probes.
	TraceAggregator = trace.Aggregator
	// ClusterRound is one merged round: every reporting node's digest in
	// a common reference clock, the straggler verdict, the cross-node
	// critical path, and the round's bytes saved versus full sends.
	ClusterRound = trace.ClusterRound
	// SpanDigest is one completed span inside a RoundDigest.
	SpanDigest = trace.SpanDigest
	// RecvDigest is one received frame: the sender's wire trace context
	// plus the local arrival time.
	RecvDigest = trace.RecvDigest
	// NodeRound is one node's digest plus its clock correction inside a
	// ClusterRound.
	NodeRound = trace.NodeRound
	// PathStep is one span on a ClusterRound's cross-node critical path.
	PathStep = trace.PathStep
	// ClockOffset is the aggregator's clock model for one node.
	ClockOffset = trace.OffsetSample
)

// Span names appearing in RoundDigest phases, sub-spans, and critical-
// path steps — the join keys snaptrace and any external trace consumer
// match on.
const (
	SpanRound     = trace.SpanRound
	SpanBuild     = trace.SpanBuild
	SpanEncode    = trace.SpanEncode
	SpanBroadcast = trace.SpanBroadcast
	SpanGather    = trace.SpanGather
	SpanDecode    = trace.SpanDecode
	SpanIntegrate = trace.SpanIntegrate
	SpanGrad      = trace.SpanGrad
	SpanMix       = trace.SpanMix
)

// NewTracer returns a tracer for the given node id with default capacity
// (128 in-flight rounds). Pass it to PeerConfig via TraceRounds — or
// attach it anywhere a *Tracer is accepted.
func NewTracer(node int) *Tracer {
	return trace.New(trace.Config{Node: node})
}

// NewTraceAggregator returns an aggregator retaining the most recent
// keepRounds merged rounds (0 selects the default of 256). Feed it with
// Add / ObserveClock, or let a Coordinator with TraceRounds set do both.
func NewTraceAggregator(keepRounds int) *TraceAggregator {
	return trace.NewAggregator(keepRounds)
}

// TraceHandler serves a node tracer's completed round digests as JSONL
// (one RoundDigest per line; ?since=R and ?max=N narrow the window) —
// the format snaptrace consumes.
func TraceHandler(t *Tracer) http.Handler { return trace.DigestHandler(t) }

// ClusterTraceHandler serves an aggregator's merged cluster rounds as
// JSONL (one ClusterRound per line; ?since= and ?max= as above).
func ClusterTraceHandler(a *TraceAggregator) http.Handler { return trace.ClusterHandler(a) }
